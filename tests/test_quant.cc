/**
 * @file
 * Tests for the fixed-point machinery: Q-format selection/rounding, the
 * bit-exact on-the-fly directional ReLU (Fig. 8) against the float
 * reference, and end-to-end quantized inference staying close to float
 * for trained and untrained models.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "core/ring_conv.h"
#include "core/ring_conv_engine.h"
#include "core/simd.h"
#include "data/tasks.h"
#include "models/backbones.h"
#include "nn/trainer.h"
#include "quant/quant_model.h"
#include "tensor/image_ops.h"

namespace ringcnn::quant {
namespace {

TEST(QFormat, ForAbsMaxFits)
{
    for (double m : {0.1, 0.5, 0.99, 1.0, 3.7, 100.0}) {
        const QFormat f = QFormat::for_abs_max(m, 8);
        EXPECT_LE(f.quantize(m), f.max_int());
        EXPECT_GE(f.quantize(-m), f.min_int());
        // One more frac bit would overflow.
        const QFormat tight{8, f.frac + 1};
        EXPECT_GT(std::llround(m * std::ldexp(1.0, tight.frac)),
                  tight.max_int());
    }
}

TEST(QFormat, QuantizeRoundTripError)
{
    const QFormat f = QFormat::for_abs_max(1.0, 8);
    std::mt19937 rng(81);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int i = 0; i < 200; ++i) {
        const double x = dist(rng);
        const double back = f.dequantize(f.quantize(x));
        EXPECT_LE(std::fabs(back - x), f.scale() * 0.5 + 1e-12);
    }
}

TEST(ShiftRoundSaturate, Behaviour)
{
    EXPECT_EQ(shift_round_saturate(10, 2, 8), 3);    // 10/4 = 2.5 -> 3
    EXPECT_EQ(shift_round_saturate(-10, 2, 8), -2);  // round half up
    EXPECT_EQ(shift_round_saturate(1000, 0, 8), 127);
    EXPECT_EQ(shift_round_saturate(-1000, 0, 8), -128);
    EXPECT_EQ(shift_round_saturate(3, -2, 8), 12);   // left shift
}

TEST(ShiftRoundSaturate, Int32ExtremesAndHalfTies)
{
    // Accumulators at the int32 rim, untouched and requantized.
    EXPECT_EQ(shift_round_saturate(INT32_MAX, 0, 32), INT32_MAX);
    EXPECT_EQ(shift_round_saturate(INT32_MIN, 0, 32), INT32_MIN);
    EXPECT_EQ(shift_round_saturate(INT32_MAX, 24, 8), 127);   // saturates
    EXPECT_EQ(shift_round_saturate(INT32_MIN, 24, 8), -128);
    EXPECT_EQ(shift_round_saturate(INT32_MAX, 25, 8), 64);    // 63.99 -> 64
    // Inputs exactly on the round-to-nearest tie: half rounds UP
    // (toward +inf), for negatives too — the hardware convention the
    // row kernels and the oracle must share.
    EXPECT_EQ(shift_round_saturate(1, 1, 8), 1);     //  0.5 ->  1
    EXPECT_EQ(shift_round_saturate(-1, 1, 8), 0);    // -0.5 ->  0
    EXPECT_EQ(shift_round_saturate(3, 1, 8), 2);     //  1.5 ->  2
    EXPECT_EQ(shift_round_saturate(-3, 1, 8), -1);   // -1.5 -> -1
    EXPECT_EQ(shift_round_saturate(5, 1, 8), 3);     //  2.5 ->  3
    EXPECT_EQ(shift_round_saturate(6, 2, 8), 2);     //  1.5 ->  2
    EXPECT_EQ(shift_round_saturate(-6, 2, 8), -1);   // -1.5 -> -1
}

TEST(QFormat, ExtremesSurviveQuantizeDequantizeRoundTrip)
{
    // Regression for the double round-trip in QFormat::quantize: int8
    // extremes and large-frac formats must come back bit-identical.
    for (const int frac : {0, 4, 7, 20, 40, 200}) {
        const QFormat f{8, frac};
        for (const int64_t v : {INT64_C(-128), INT64_C(-127), INT64_C(-1),
                                INT64_C(0), INT64_C(1), INT64_C(126),
                                INT64_C(127)}) {
            EXPECT_EQ(f.quantize(f.dequantize(v)), v)
                << "frac=" << frac << " v=" << v;
        }
    }
    for (const int frac : {0, 10, 31, 40}) {
        const QFormat f{32, frac};
        for (const int64_t v :
             {static_cast<int64_t>(INT32_MIN), INT64_C(-1), INT64_C(0),
              INT64_C(1), static_cast<int64_t>(INT32_MAX)}) {
            EXPECT_EQ(f.quantize(f.dequantize(v)), v)
                << "frac=" << frac << " v=" << v;
        }
    }
}

TEST(QFormat, HugeFracSaturatesInsteadOfOverflowing)
{
    // frac far beyond the double exponent range: the scaled value is
    // infinite, where llround would be UB — quantize must saturate.
    const QFormat f{8, 1000};
    EXPECT_EQ(f.quantize(1.0), 127);
    EXPECT_EQ(f.quantize(-1.0), -128);
    EXPECT_EQ(f.quantize(0.0), 0);
    // Format search over a subnormal magnitude must stay finite and
    // still fit the value.
    const QFormat g = QFormat::for_abs_max(1e-310, 8);
    EXPECT_LE(g.quantize(1e-310), g.max_int());
    EXPECT_GE(g.quantize(-1e-310), g.min_int());
    EXPECT_EQ(g.quantize(g.dequantize(100)), 100);
}

TEST(SimdInt32Rows, MatchInt64ReferenceIncludingWrapAndTails)
{
    // Both int32 row kernels against an int64 reference reduced mod
    // 2^32, over lengths that exercise the 8-wide AVX2 body and its
    // scalar tail, with values at the int32 rim so the wrap semantics
    // of the generic (uint32) and SIMD (mullo/add) builds are pinned
    // to each other.
    std::mt19937 rng(87);
    std::uniform_int_distribution<int32_t> small(-128, 127);
    const std::vector<int32_t> interesting = {
        0, 1, -1, 127, -128, INT32_MAX, INT32_MIN, INT32_MAX - 1,
    };
    for (const int64_t len : {1, 7, 8, 9, 16, 31}) {
        std::vector<int32_t> src(static_cast<size_t>(len));
        std::vector<int32_t> dst(static_cast<size_t>(len));
        for (int64_t i = 0; i < len; ++i) {
            src[static_cast<size_t>(i)] =
                (i % 3 == 0)
                    ? interesting[static_cast<size_t>(i) %
                                  interesting.size()]
                    : small(rng);
            dst[static_cast<size_t>(i)] = small(rng);
        }
        for (const int32_t a : {0, 1, -1, 127, -128, 77}) {
            std::vector<int32_t> got = dst;
            simd::axpy_i32(got.data(), src.data(), a, len);
            for (int64_t i = 0; i < len; ++i) {
                const uint64_t want =
                    static_cast<uint32_t>(dst[static_cast<size_t>(i)]) +
                    static_cast<uint32_t>(a) *
                        static_cast<uint32_t>(src[static_cast<size_t>(i)]);
                EXPECT_EQ(got[static_cast<size_t>(i)],
                          static_cast<int32_t>(
                              static_cast<uint32_t>(want)))
                    << "axpy len=" << len << " a=" << a << " i=" << i;
            }
            simd::scale_i32(got.data(), src.data(), a, len);
            for (int64_t i = 0; i < len; ++i) {
                const uint32_t want =
                    static_cast<uint32_t>(a) *
                    static_cast<uint32_t>(src[static_cast<size_t>(i)]);
                EXPECT_EQ(got[static_cast<size_t>(i)],
                          static_cast<int32_t>(want))
                    << "scale len=" << len << " a=" << a << " i=" << i;
            }
        }
    }
}

TEST(QuantConvKernel, AccumulatorsAtInt32ExtremesMatchOracle)
{
    // One 1x1 conv whose accumulator touches INT32_MAX exactly and one
    // that reaches INT32_MIN + 1: the int32 row kernels must preserve
    // the rim values bit for bit against the int64 oracle.
    const int co = 2, ci = 1, k = 1, h = 3, w = 5;
    const std::vector<int32_t> wts = {-128, 127};  // [co][ci][1][1]
    const std::vector<int64_t> bias = {
        INT64_C(2147483647) - 128 * 128,   // + (-128)*(-128) == INT32_MAX
        INT64_C(-2147483647) + 127 * 128,  // + 127*(-128) == INT32_MIN+1
    };
    const std::vector<int> out_frac = {7, 7};
    const QuantConvKernel kern(co, ci, k, wts, bias, out_frac);
    EXPECT_TRUE(kern.weights_fit());
    EXPECT_TRUE(kern.int32_safe(8));

    quant::QConvNode oracle;
    oracle.co = co;
    oracle.ci = ci;
    oracle.k = k;
    oracle.w = wts;
    oracle.bias = bias;
    oracle.out_frac = out_frac;

    QAct in;
    in.shape = {ci, h, w};
    in.frac = {0};
    in.v = {-128, 127, 0, -1, 1,  //
            64,   -64, 2, -2, 127,
            -128, -128, 127, 3, -3};
    const QAct want = oracle.forward(in);

    std::vector<int32_t> x32(in.v.begin(), in.v.end());
    // Every row banding must agree with the whole-plane oracle.
    for (const int band : {1, 2, 3}) {
        for (int oc = 0; oc < co; ++oc) {
            for (int y0 = 0; y0 < h; y0 += band) {
                const int y1 = std::min(y0 + band, h);
                std::vector<int32_t> rows(
                    static_cast<size_t>(y1 - y0) * w, 0);
                kern.conv_rows(x32.data(), h, w, oc, y0, y1, rows.data());
                for (int y = y0; y < y1; ++y) {
                    for (int xx = 0; xx < w; ++xx) {
                        EXPECT_EQ(
                            rows[static_cast<size_t>(y - y0) * w + xx],
                            want.at(oc, y, xx))
                            << "band=" << band << " oc=" << oc << " y=" << y
                            << " x=" << xx;
                    }
                }
            }
        }
    }
    // Rim values really are hit.
    EXPECT_EQ(want.at(0, 0, 0), INT32_MAX);
    EXPECT_EQ(want.at(1, 0, 0), INT32_MIN + 1);

    // A bound past the rim must be rejected for the engine path.
    const std::vector<int64_t> hot_bias = {INT64_C(2147483647), 0};
    const QuantConvKernel unsafe(co, ci, k, wts, hot_bias, out_frac);
    EXPECT_FALSE(unsafe.int32_safe(8));
}

TEST(OnTheFlyDirRelu, ExtremeFracSpreadsAlignExactly)
{
    // frac widths that force align LEFT shifts (ny spread of 20 bits)
    // and output shifts in BOTH directions (nx above and below
    // fmax + log2 n). The independent straight-line reference below
    // repeats the Fig. 8 pipeline in exact double arithmetic (all
    // magnitudes < 2^53), so equality must be exact.
    const int n = 4;
    const std::vector<int> ny{0, 20, 5, 9};
    const std::vector<int> nx{25, 2, 12, 30};
    const std::vector<int64_t> y{3, -700000, 17, -250};
    std::vector<int64_t> out;
    onthefly_directional_relu(y, ny, nx, n, out, 32);

    const int fmax = 20;
    double t[4];
    for (int i = 0; i < n; ++i) {
        t[static_cast<size_t>(i)] = static_cast<double>(y[static_cast<size_t>(i)]) *
            std::ldexp(1.0, fmax - ny[static_cast<size_t>(i)]);
    }
    auto butterfly = [&t]() {
        const double a = t[0] + t[1], b = t[0] - t[1];
        const double c = t[2] + t[3], d = t[2] - t[3];
        t[0] = a + c;
        t[1] = b + d;
        t[2] = a - c;
        t[3] = b - d;
    };
    butterfly();
    for (double& v : t) v = v > 0.0 ? v : 0.0;
    butterfly();
    for (int i = 0; i < n; ++i) {
        const int64_t expected = shift_round_saturate(
            static_cast<int64_t>(t[static_cast<size_t>(i)]),
            fmax + 2 - nx[static_cast<size_t>(i)], 32);
        EXPECT_EQ(out[static_cast<size_t>(i)], expected) << "component " << i;
    }
}

TEST(OnTheFlyDirRelu, MatchesFloatReference)
{
    // The integer pipeline must equal quantize(fH_float(y)) whenever no
    // saturation occurs: full-precision internals guarantee it.
    const int n = 4;
    const auto [u, v] = fh_transforms(n);
    std::mt19937 rng(82);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<int> ny{12, 14, 13, 12}, nx{6, 7, 6, 5};
        std::vector<int64_t> y(4);
        std::vector<double> yf(4);
        for (int i = 0; i < 4; ++i) {
            yf[static_cast<size_t>(i)] = dist(rng);
            y[static_cast<size_t>(i)] = std::llround(
                yf[static_cast<size_t>(i)] *
                std::ldexp(1.0, ny[static_cast<size_t>(i)]));
            yf[static_cast<size_t>(i)] =
                y[static_cast<size_t>(i)] *
                std::ldexp(1.0, -ny[static_cast<size_t>(i)]);
        }
        // float reference: (1/n) H fcw(H y)
        Tensor t({4, 1, 1});
        for (int i = 0; i < 4; ++i) {
            t.at(i, 0, 0) = static_cast<float>(yf[static_cast<size_t>(i)]);
        }
        const Tensor ref = directional_relu(u, v, t);
        std::vector<int64_t> out;
        onthefly_directional_relu(y, ny, nx, n, out, 16);
        for (int i = 0; i < 4; ++i) {
            const double want = ref.at(i, 0, 0);
            const double got =
                out[static_cast<size_t>(i)] *
                std::ldexp(1.0, -nx[static_cast<size_t>(i)]);
            EXPECT_NEAR(got, want,
                        std::ldexp(1.0, -nx[static_cast<size_t>(i)]) * 0.51);
        }
    }
}

TEST(OnTheFlyDirRelu, SaturatesTo8Bit)
{
    std::vector<int64_t> y{1 << 20, 0, 0, 0};
    std::vector<int> ny{4, 4, 4, 4}, nx{4, 4, 4, 4};
    std::vector<int64_t> out;
    onthefly_directional_relu(y, ny, nx, 4, out, 8);
    for (int i = 0; i < 4; ++i) {
        EXPECT_LE(out[static_cast<size_t>(i)], 127);
        EXPECT_GE(out[static_cast<size_t>(i)], -128);
    }
}

class QuantModelTest : public ::testing::Test
{
  protected:
    static std::vector<Tensor> calib()
    {
        std::mt19937 rng(83);
        std::vector<Tensor> out;
        for (int i = 0; i < 3; ++i) {
            out.push_back(data::synthetic_image(3, 16, 16, rng));
        }
        return out;
    }
};

TEST_F(QuantModelTest, RealDenoiserCloseToFloat)
{
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m = models::build_dn_ernet_pu(models::Algebra::real(), mc);
    QuantizedModel qm(m, calib());
    std::mt19937 rng(84);
    const Tensor x = data::synthetic_image(3, 16, 16, rng);
    const Tensor yf = m.forward(x);
    const Tensor yq = qm.forward(x);
    EXPECT_EQ(yq.shape(), yf.shape());
    // Quantization PSNR between float and fixed must be high.
    EXPECT_GT(psnr(yf, yq), 30.0);
}

TEST_F(QuantModelTest, RingFhModelCloseToFloat)
{
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    QuantizedModel qm(m, calib());
    std::mt19937 rng(85);
    const Tensor x = data::synthetic_image(3, 16, 16, rng);
    EXPECT_GT(psnr(m.forward(x), qm.forward(x)), 32.0);
}

TEST_F(QuantModelTest, SrModelWithBilinearSkip)
{
    nn::Model m = models::build_srresnet(models::Algebra::with_fh("RI2"), 8, 1);
    std::mt19937 rng(86);
    std::vector<Tensor> cal;
    for (int i = 0; i < 2; ++i) {
        cal.push_back(data::synthetic_image(3, 8, 8, rng));
    }
    QuantizedModel qm(m, cal);
    const Tensor x = data::synthetic_image(3, 8, 8, rng);
    const Tensor yf = m.forward(x);
    const Tensor yq = qm.forward(x);
    EXPECT_EQ(yq.shape(), (Shape{3, 32, 32}));
    EXPECT_GT(psnr(yf, yq), 30.0);
}

TEST_F(QuantModelTest, TrainedModelSmallQuantDrop)
{
    // After short training, quantized PSNR on the task must be within a
    // reasonable drop of the float PSNR (paper Fig. 13: ~0.11 dB at full
    // scale; we allow a looser bound at laptop scale).
    const data::DenoiseTask task(25.0f / 255.0f);
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    nn::TrainConfig cfg;
    cfg.steps = 200;
    cfg.eval_count = 4;
    const auto res = nn::train_on_task(m, task, cfg);

    const auto eval = data::make_eval_set(task, 4, 48, 48, cfg.seed + 999);
    QuantizedModel qm(m, calib());
    double qpsnr = 0.0;
    for (const auto& [in, tgt] : eval) {
        qpsnr += psnr(clamp(qm.forward(in), 0, 1), tgt);
    }
    qpsnr /= eval.size();
    EXPECT_GT(qpsnr, res.psnr_db - 0.6)
        << "float " << res.psnr_db << " vs quant " << qpsnr;
}

TEST_F(QuantModelTest, OnTheFlyBeatsQuantizeFirst)
{
    // The ablation of Section V: the quantize-before-transform pipeline
    // must not be better than the on-the-fly pipeline (usually worse).
    const data::DenoiseTask task(25.0f / 255.0f);
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    nn::TrainConfig cfg;
    cfg.steps = 200;
    cfg.eval_count = 4;
    nn::train_on_task(m, task, cfg);

    QuantOptions otf;
    QuantOptions qfirst;
    qfirst.onthefly_dir_relu = false;
    QuantizedModel qm_otf(m, calib(), otf);
    QuantizedModel qm_qf(m, calib(), qfirst);

    const auto eval = data::make_eval_set(task, 4, 48, 48, 777);
    double p_otf = 0.0, p_qf = 0.0;
    for (const auto& [in, tgt] : eval) {
        p_otf += psnr(clamp(qm_otf.forward(in), 0, 1), tgt);
        p_qf += psnr(clamp(qm_qf.forward(in), 0, 1), tgt);
    }
    EXPECT_GE(p_otf, p_qf - 0.02 * eval.size());
}

TEST_F(QuantModelTest, ComponentwiseQHelpsDirectionalRelu)
{
    // Section IV-C: with fH, single per-layer Q-formats saturate some
    // components; component-wise Q must not be worse.
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    const data::DenoiseTask task(25.0f / 255.0f);
    nn::TrainConfig cfg;
    cfg.steps = 200;
    cfg.eval_count = 4;
    nn::train_on_task(m, task, cfg);

    QuantOptions cw;
    QuantOptions uni;
    uni.componentwise_q = false;
    QuantizedModel qm_cw(m, calib(), cw);
    QuantizedModel qm_uni(m, calib(), uni);
    const auto eval = data::make_eval_set(task, 4, 48, 48, 778);
    double p_cw = 0.0, p_uni = 0.0;
    for (const auto& [in, tgt] : eval) {
        p_cw += psnr(clamp(qm_cw.forward(in), 0, 1), tgt);
        p_uni += psnr(clamp(qm_uni.forward(in), 0, 1), tgt);
    }
    EXPECT_GE(p_cw, p_uni - 0.02 * eval.size());
}

TEST_F(QuantModelTest, OpLogReflectsFusion)
{
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    QuantizedModel qm(m, calib());
    const auto ops = qm.op_names();
    bool has_otf = false;
    for (const auto& o : ops) {
        if (o == "dir-relu(otf)") has_otf = true;
    }
    EXPECT_TRUE(has_otf);
}

}  // namespace
}  // namespace ringcnn::quant
