/**
 * @file
 * Tests for the fixed-point machinery: Q-format selection/rounding, the
 * bit-exact on-the-fly directional ReLU (Fig. 8) against the float
 * reference, and end-to-end quantized inference staying close to float
 * for trained and untrained models.
 */
#include <gtest/gtest.h>

#include <random>

#include "core/ring_conv.h"
#include "data/tasks.h"
#include "models/backbones.h"
#include "nn/trainer.h"
#include "quant/quant_model.h"
#include "tensor/image_ops.h"

namespace ringcnn::quant {
namespace {

TEST(QFormat, ForAbsMaxFits)
{
    for (double m : {0.1, 0.5, 0.99, 1.0, 3.7, 100.0}) {
        const QFormat f = QFormat::for_abs_max(m, 8);
        EXPECT_LE(f.quantize(m), f.max_int());
        EXPECT_GE(f.quantize(-m), f.min_int());
        // One more frac bit would overflow.
        const QFormat tight{8, f.frac + 1};
        EXPECT_GT(std::llround(m * std::ldexp(1.0, tight.frac)),
                  tight.max_int());
    }
}

TEST(QFormat, QuantizeRoundTripError)
{
    const QFormat f = QFormat::for_abs_max(1.0, 8);
    std::mt19937 rng(81);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int i = 0; i < 200; ++i) {
        const double x = dist(rng);
        const double back = f.dequantize(f.quantize(x));
        EXPECT_LE(std::fabs(back - x), f.scale() * 0.5 + 1e-12);
    }
}

TEST(ShiftRoundSaturate, Behaviour)
{
    EXPECT_EQ(shift_round_saturate(10, 2, 8), 3);    // 10/4 = 2.5 -> 3
    EXPECT_EQ(shift_round_saturate(-10, 2, 8), -2);  // round half up
    EXPECT_EQ(shift_round_saturate(1000, 0, 8), 127);
    EXPECT_EQ(shift_round_saturate(-1000, 0, 8), -128);
    EXPECT_EQ(shift_round_saturate(3, -2, 8), 12);   // left shift
}

TEST(OnTheFlyDirRelu, MatchesFloatReference)
{
    // The integer pipeline must equal quantize(fH_float(y)) whenever no
    // saturation occurs: full-precision internals guarantee it.
    const int n = 4;
    const auto [u, v] = fh_transforms(n);
    std::mt19937 rng(82);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<int> ny{12, 14, 13, 12}, nx{6, 7, 6, 5};
        std::vector<int64_t> y(4);
        std::vector<double> yf(4);
        for (int i = 0; i < 4; ++i) {
            yf[static_cast<size_t>(i)] = dist(rng);
            y[static_cast<size_t>(i)] = std::llround(
                yf[static_cast<size_t>(i)] *
                std::ldexp(1.0, ny[static_cast<size_t>(i)]));
            yf[static_cast<size_t>(i)] =
                y[static_cast<size_t>(i)] *
                std::ldexp(1.0, -ny[static_cast<size_t>(i)]);
        }
        // float reference: (1/n) H fcw(H y)
        Tensor t({4, 1, 1});
        for (int i = 0; i < 4; ++i) {
            t.at(i, 0, 0) = static_cast<float>(yf[static_cast<size_t>(i)]);
        }
        const Tensor ref = directional_relu(u, v, t);
        std::vector<int64_t> out;
        onthefly_directional_relu(y, ny, nx, n, out, 16);
        for (int i = 0; i < 4; ++i) {
            const double want = ref.at(i, 0, 0);
            const double got =
                out[static_cast<size_t>(i)] *
                std::ldexp(1.0, -nx[static_cast<size_t>(i)]);
            EXPECT_NEAR(got, want,
                        std::ldexp(1.0, -nx[static_cast<size_t>(i)]) * 0.51);
        }
    }
}

TEST(OnTheFlyDirRelu, SaturatesTo8Bit)
{
    std::vector<int64_t> y{1 << 20, 0, 0, 0};
    std::vector<int> ny{4, 4, 4, 4}, nx{4, 4, 4, 4};
    std::vector<int64_t> out;
    onthefly_directional_relu(y, ny, nx, 4, out, 8);
    for (int i = 0; i < 4; ++i) {
        EXPECT_LE(out[static_cast<size_t>(i)], 127);
        EXPECT_GE(out[static_cast<size_t>(i)], -128);
    }
}

class QuantModelTest : public ::testing::Test
{
  protected:
    static std::vector<Tensor> calib()
    {
        std::mt19937 rng(83);
        std::vector<Tensor> out;
        for (int i = 0; i < 3; ++i) {
            out.push_back(data::synthetic_image(3, 16, 16, rng));
        }
        return out;
    }
};

TEST_F(QuantModelTest, RealDenoiserCloseToFloat)
{
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m = models::build_dn_ernet_pu(models::Algebra::real(), mc);
    QuantizedModel qm(m, calib());
    std::mt19937 rng(84);
    const Tensor x = data::synthetic_image(3, 16, 16, rng);
    const Tensor yf = m.forward(x);
    const Tensor yq = qm.forward(x);
    EXPECT_EQ(yq.shape(), yf.shape());
    // Quantization PSNR between float and fixed must be high.
    EXPECT_GT(psnr(yf, yq), 30.0);
}

TEST_F(QuantModelTest, RingFhModelCloseToFloat)
{
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    QuantizedModel qm(m, calib());
    std::mt19937 rng(85);
    const Tensor x = data::synthetic_image(3, 16, 16, rng);
    EXPECT_GT(psnr(m.forward(x), qm.forward(x)), 32.0);
}

TEST_F(QuantModelTest, SrModelWithBilinearSkip)
{
    nn::Model m = models::build_srresnet(models::Algebra::with_fh("RI2"), 8, 1);
    std::mt19937 rng(86);
    std::vector<Tensor> cal;
    for (int i = 0; i < 2; ++i) {
        cal.push_back(data::synthetic_image(3, 8, 8, rng));
    }
    QuantizedModel qm(m, cal);
    const Tensor x = data::synthetic_image(3, 8, 8, rng);
    const Tensor yf = m.forward(x);
    const Tensor yq = qm.forward(x);
    EXPECT_EQ(yq.shape(), (Shape{3, 32, 32}));
    EXPECT_GT(psnr(yf, yq), 30.0);
}

TEST_F(QuantModelTest, TrainedModelSmallQuantDrop)
{
    // After short training, quantized PSNR on the task must be within a
    // reasonable drop of the float PSNR (paper Fig. 13: ~0.11 dB at full
    // scale; we allow a looser bound at laptop scale).
    const data::DenoiseTask task(25.0f / 255.0f);
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    nn::TrainConfig cfg;
    cfg.steps = 200;
    cfg.eval_count = 4;
    const auto res = nn::train_on_task(m, task, cfg);

    const auto eval = data::make_eval_set(task, 4, 48, 48, cfg.seed + 999);
    QuantizedModel qm(m, calib());
    double qpsnr = 0.0;
    for (const auto& [in, tgt] : eval) {
        qpsnr += psnr(clamp(qm.forward(in), 0, 1), tgt);
    }
    qpsnr /= eval.size();
    EXPECT_GT(qpsnr, res.psnr_db - 0.6)
        << "float " << res.psnr_db << " vs quant " << qpsnr;
}

TEST_F(QuantModelTest, OnTheFlyBeatsQuantizeFirst)
{
    // The ablation of Section V: the quantize-before-transform pipeline
    // must not be better than the on-the-fly pipeline (usually worse).
    const data::DenoiseTask task(25.0f / 255.0f);
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    nn::TrainConfig cfg;
    cfg.steps = 200;
    cfg.eval_count = 4;
    nn::train_on_task(m, task, cfg);

    QuantOptions otf;
    QuantOptions qfirst;
    qfirst.onthefly_dir_relu = false;
    QuantizedModel qm_otf(m, calib(), otf);
    QuantizedModel qm_qf(m, calib(), qfirst);

    const auto eval = data::make_eval_set(task, 4, 48, 48, 777);
    double p_otf = 0.0, p_qf = 0.0;
    for (const auto& [in, tgt] : eval) {
        p_otf += psnr(clamp(qm_otf.forward(in), 0, 1), tgt);
        p_qf += psnr(clamp(qm_qf.forward(in), 0, 1), tgt);
    }
    EXPECT_GE(p_otf, p_qf - 0.02 * eval.size());
}

TEST_F(QuantModelTest, ComponentwiseQHelpsDirectionalRelu)
{
    // Section IV-C: with fH, single per-layer Q-formats saturate some
    // components; component-wise Q must not be worse.
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    const data::DenoiseTask task(25.0f / 255.0f);
    nn::TrainConfig cfg;
    cfg.steps = 200;
    cfg.eval_count = 4;
    nn::train_on_task(m, task, cfg);

    QuantOptions cw;
    QuantOptions uni;
    uni.componentwise_q = false;
    QuantizedModel qm_cw(m, calib(), cw);
    QuantizedModel qm_uni(m, calib(), uni);
    const auto eval = data::make_eval_set(task, 4, 48, 48, 778);
    double p_cw = 0.0, p_uni = 0.0;
    for (const auto& [in, tgt] : eval) {
        p_cw += psnr(clamp(qm_cw.forward(in), 0, 1), tgt);
        p_uni += psnr(clamp(qm_uni.forward(in), 0, 1), tgt);
    }
    EXPECT_GE(p_cw, p_uni - 0.02 * eval.size());
}

TEST_F(QuantModelTest, OpLogReflectsFusion)
{
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    QuantizedModel qm(m, calib());
    const auto ops = qm.op_names();
    bool has_otf = false;
    for (const auto& o : ops) {
        if (o == "dir-relu(otf)") has_otf = true;
    }
    EXPECT_TRUE(has_otf);
}

}  // namespace
}  // namespace ringcnn::quant
