/**
 * @file
 * Bit-exactness suite for the quantized engine path: the compiled
 * QuantExecutor (int8 weights, int32 accumulators, simd::axpy_i32 row
 * kernels, fused Fig. 8 integer epilogues) must reproduce the scalar
 * QNode oracle walk raw integer by raw integer — never tolerance-
 * compared — across every registered ring, odd/even image sizes,
 * k in {1, 3}, the on-the-fly vs quantize-first directional-ReLU
 * pipelines, component-wise vs uniform Q-formats, and thread counts,
 * plus ~100 seeded random (weights, Q-format, input) draws and the
 * full ERNet-PU / SRResNet graphs (pad/crop/shuffle/residual/
 * two-branch/bilinear nodes).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>

#include "core/ring_conv.h"
#include "data/synthetic.h"
#include "models/backbones.h"
#include "nn/layer.h"
#include "nn/model.h"
#include "quant/quant_executor.h"
#include "quant/quant_model.h"

namespace ringcnn::quant {
namespace {

/** RAII override of RINGCNN_THREADS (POSIX setenv). */
class ThreadsEnv
{
  public:
    explicit ThreadsEnv(int n)
    {
        const char* old = std::getenv("RINGCNN_THREADS");
        if (old != nullptr) saved_ = old;
        had_ = old != nullptr;
        setenv("RINGCNN_THREADS", std::to_string(n).c_str(), 1);
    }
    ~ThreadsEnv()
    {
        if (had_) {
            setenv("RINGCNN_THREADS", saved_.c_str(), 1);
        } else {
            unsetenv("RINGCNN_THREADS");
        }
    }

  private:
    std::string saved_;
    bool had_ = false;
};

/** Ring conv + fH directional ReLU backbone over `layers` layers. */
nn::Model
ring_backbone(const Ring& ring, int tuple_channels, int layers, int k,
              unsigned seed)
{
    std::mt19937 rng(seed);
    const auto [u, v] = fh_transforms(ring.n);
    auto seq = std::make_unique<nn::Sequential>();
    for (int l = 0; l < layers; ++l) {
        seq->add(std::make_unique<nn::RingConv2d>(ring, tuple_channels,
                                                  tuple_channels, k, rng));
        seq->add(std::make_unique<nn::DirectionalReLU>(u, v));
    }
    return nn::Model("quant-exec-backbone", std::move(seq));
}

/** Raw-integer equality, with a readable location on failure. */
void
expect_bit_identical(const QAct& oracle, const QAct& got,
                     const std::string& what)
{
    ASSERT_EQ(oracle.shape, got.shape) << what;
    ASSERT_EQ(oracle.frac, got.frac) << what;
    ASSERT_EQ(oracle.v.size(), got.v.size()) << what;
    for (size_t i = 0; i < oracle.v.size(); ++i) {
        ASSERT_EQ(oracle.v[i], got.v[i])
            << what << " first mismatch at flat index " << i;
    }
}

class QuantExecAllRings : public ::testing::TestWithParam<std::string>
{
};

TEST_P(QuantExecAllRings, BitExactAcrossSizesOptionsAndThreads)
{
    const Ring& ring = get_ring(GetParam());
    std::mt19937 rng(901);
    for (const int k : {1, 3}) {
        // Odd and even spatial sizes exercise every border band shape.
        for (const auto& [h, w] : {std::pair{13, 11}, std::pair{16, 12}}) {
            nn::Model m = ring_backbone(ring, 2, 2, k, 77 + k);
            std::vector<Tensor> calib;
            for (int i = 0; i < 2; ++i) {
                calib.push_back(data::synthetic_image(2 * ring.n, h, w, rng));
            }
            const Tensor x = data::synthetic_image(2 * ring.n, h, w, rng);
            for (const bool otf : {true, false}) {
                for (const bool cw : {true, false}) {
                    QuantOptions qo;
                    qo.onthefly_dir_relu = otf;
                    qo.componentwise_q = cw;
                    const QuantizedModel qm(m, calib, qo);
                    const QAct in = qm.quantize_input(x);
                    const QAct oracle = qm.root()->forward(in);
                    for (const int threads : {1, 2, 7}) {
                        ThreadsEnv env(threads);
                        QuantExecutor ex(qm);
                        EXPECT_GT(ex.fast_conv_count(), 0);
                        const QAct got = ex.run(in);
                        expect_bit_identical(
                            oracle, got,
                            ring.name + " k=" + std::to_string(k) + " " +
                                std::to_string(h) + "x" + std::to_string(w) +
                                " otf=" + std::to_string(otf) +
                                " cw=" + std::to_string(cw) +
                                " threads=" + std::to_string(threads));
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllRings, QuantExecAllRings,
                         ::testing::ValuesIn(all_ring_names()),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (char& c : n) {
                                 if (c == '-') c = '_';
                             }
                             return n;
                         });

TEST(QuantExecutorModel, ErnetPuGraphBitExact)
{
    // Full denoising graph: pad, pixel-unshuffle, convs with fused
    // directional ReLUs, residual blocks, pixel-shuffle, crop.
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::Model m = models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"),
                                            mc);
    std::mt19937 rng(902);
    std::vector<Tensor> calib;
    for (int i = 0; i < 2; ++i) {
        calib.push_back(data::synthetic_image(3, 16, 16, rng));
    }
    const QuantizedModel qm(m, calib);
    const Tensor x = data::synthetic_image(3, 16, 16, rng);
    const QAct in = qm.quantize_input(x);
    const QAct oracle = qm.root()->forward(in);
    QuantExecutor ex(qm);
    expect_bit_identical(oracle, ex.run(in), "dn_ernet_pu RI4");

    // The default QuantizedModel::forward rides the same executor;
    // dequantizing identical integers must give identical floats.
    const Tensor ye = qm.forward(x);
    QuantOptions strict;
    strict.strict_reference = true;
    const QuantizedModel qms(m, calib, strict);
    const Tensor ys = qms.forward(x);
    ASSERT_EQ(ye.shape(), ys.shape());
    for (int64_t i = 0; i < ye.numel(); ++i) {
        ASSERT_EQ(ye[i], ys[i]) << "flat index " << i;
    }
}

TEST(QuantExecutorModel, SrresnetWithBilinearSkipBitExact)
{
    // Two-branch graph with the fixed-point bilinear upsampler skip.
    nn::Model m = models::build_srresnet(models::Algebra::with_fh("RI2"), 8,
                                         1);
    std::mt19937 rng(903);
    std::vector<Tensor> calib;
    for (int i = 0; i < 2; ++i) {
        calib.push_back(data::synthetic_image(3, 8, 8, rng));
    }
    const QuantizedModel qm(m, calib);
    const Tensor x = data::synthetic_image(3, 8, 8, rng);
    const QAct in = qm.quantize_input(x);
    const QAct oracle = qm.root()->forward(in);
    QuantExecutor ex(qm);
    expect_bit_identical(oracle, ex.run(in), "srresnet RI2");
}

TEST(QuantExecutorModel, BatchedRunMatchesPerImageOracle)
{
    const Ring& ring = get_ring("RI4");
    nn::Model m = ring_backbone(ring, 2, 2, 3, 55);
    std::mt19937 rng(904);
    std::vector<Tensor> calib{data::synthetic_image(2 * ring.n, 12, 12, rng)};
    const QuantizedModel qm(m, calib);

    // Different spatial sizes within one batch.
    std::vector<QAct> ins;
    for (const auto& [h, w] : {std::pair{12, 12}, std::pair{9, 7},
                               std::pair{16, 5}}) {
        ins.push_back(
            qm.quantize_input(data::synthetic_image(2 * ring.n, h, w, rng)));
    }
    QuantExecutor ex(qm);
    const std::vector<QAct> got = ex.run(ins);
    ASSERT_EQ(got.size(), ins.size());
    for (size_t i = 0; i < ins.size(); ++i) {
        expect_bit_identical(qm.root()->forward(ins[i]), got[i],
                             "batched image " + std::to_string(i));
    }

    // The model-level batched entry point rides the same engine.
    const std::vector<QAct> via_model = qm.infer(ins);
    ASSERT_EQ(via_model.size(), ins.size());
    for (size_t i = 0; i < ins.size(); ++i) {
        expect_bit_identical(got[i], via_model[i],
                             "QuantizedModel::infer image " +
                                 std::to_string(i));
    }
}

TEST(QuantExecutorModel, TwoBranchInsideResidualBitExact)
{
    // Regression: compiling QTwoBranchNode used to release its input
    // arena slot one time too many. With the surrounding residual's
    // skip connection still holding that slot, a later conv step
    // acquired and overwrote it, corrupting the residual add. The
    // graph below reproduces exactly that nesting.
    const Ring& ring = get_ring("RI4");
    const auto [u, v] = fh_transforms(ring.n);
    auto block = [&](unsigned seed) {
        std::mt19937 r(seed);
        auto s = std::make_unique<nn::Sequential>();
        s->add(std::make_unique<nn::RingConv2d>(ring, 2, 2, 3, r));
        s->add(std::make_unique<nn::DirectionalReLU>(u, v));
        return s;
    };
    auto body = std::make_unique<nn::Sequential>();
    body->add(std::make_unique<nn::TwoBranchAdd>(block(1), block(2)));
    {
        std::mt19937 r(3);
        body->add(std::make_unique<nn::RingConv2d>(ring, 2, 2, 3, r));
        body->add(std::make_unique<nn::DirectionalReLU>(u, v));
    }
    auto root = std::make_unique<nn::Sequential>();
    root->add(std::make_unique<nn::Residual>(std::move(body)));
    nn::Model m("twobranch-in-residual", std::move(root));

    std::mt19937 rng(906);
    std::vector<Tensor> calib{data::synthetic_image(2 * ring.n, 12, 12, rng)};
    const QuantizedModel qm(m, calib);
    const QAct in = qm.quantize_input(
        data::synthetic_image(2 * ring.n, 12, 12, rng));
    QuantExecutor ex(qm);
    expect_bit_identical(qm.root()->forward(in), ex.run(in),
                         "two-branch inside residual");
}

TEST(QuantExecutorModel, WideWeightsFallBackToScalarAndStayExact)
{
    // 12-bit weights exceed the int8 kernel cache: the planner must
    // compile those convs onto the scalar oracle and stay bit-exact.
    const Ring& ring = get_ring("RI4");
    nn::Model m = ring_backbone(ring, 2, 1, 3, 56);
    std::mt19937 rng(905);
    std::vector<Tensor> calib{data::synthetic_image(2 * ring.n, 10, 10, rng)};
    QuantOptions qo;
    qo.weight_bits = 12;
    const QuantizedModel qm(m, calib, qo);
    const QAct in = qm.quantize_input(
        data::synthetic_image(2 * ring.n, 10, 10, rng));
    QuantExecutor ex(qm);
    EXPECT_GT(ex.scalar_conv_count(), 0);
    expect_bit_identical(qm.root()->forward(in), ex.run(in),
                         "12-bit-weight fallback");
}

TEST(QuantExecutorProperty, HundredRandomDrawsBitExact)
{
    // ~100 seeded random (weights, Q-formats via input scaling, inputs)
    // draws: quantize -> infer -> dequantize through the engine and the
    // scalar walk must agree bit for bit. On failure the seed and the
    // minimal (ring, shape, k) tuple identify the reproduction.
    const auto& rings = all_ring_names();
    for (unsigned seed = 0; seed < 100; ++seed) {
        std::mt19937 rng(seed);
        const Ring& ring =
            get_ring(rings[rng() % rings.size()]);
        const int k = (rng() % 2) == 0 ? 1 : 3;
        const int h = 5 + static_cast<int>(rng() % 9);
        const int w = 5 + static_cast<int>(rng() % 9);
        const int ct = 1 + static_cast<int>(rng() % 2);
        const int layers = 1 + static_cast<int>(rng() % 2);
        // Scale activations across several octaves so the per-layer /
        // per-component Q-format search lands on varied frac widths,
        // including ones that force left and right align shifts.
        const float scale = std::ldexp(1.0f, static_cast<int>(rng() % 9) - 4);
        const std::string what =
            "seed=" + std::to_string(seed) + " ring=" + ring.name +
            " shape=[" + std::to_string(ct * ring.n) + ", " +
            std::to_string(h) + ", " + std::to_string(w) + "] k=" +
            std::to_string(k);
        SCOPED_TRACE(what);

        nn::Model m = ring_backbone(ring, ct, layers, k, seed * 31 + 7);
        std::vector<Tensor> calib;
        for (int i = 0; i < 2; ++i) {
            Tensor t = data::synthetic_image(ct * ring.n, h, w, rng);
            t *= scale;
            calib.push_back(std::move(t));
        }
        QuantOptions qo;
        qo.onthefly_dir_relu = (rng() % 2) == 0;
        qo.componentwise_q = (rng() % 2) == 0;
        const QuantizedModel qm(m, calib, qo);

        Tensor x = data::synthetic_image(ct * ring.n, h, w, rng);
        x *= scale;
        const QAct in = qm.quantize_input(x);
        const QAct oracle = qm.root()->forward(in);
        QuantExecutor ex(qm);
        const QAct got = ex.run(in);
        expect_bit_identical(oracle, got, what);

        // Dequantized floats of identical integers are identical bits.
        const Tensor fo = QuantizedModel::dequantize(oracle);
        const Tensor fg = QuantizedModel::dequantize(got);
        for (int64_t i = 0; i < fo.numel(); ++i) {
            ASSERT_EQ(fo[i], fg[i]) << what << " flat index " << i;
        }
    }
}

}  // namespace
}  // namespace ringcnn::quant
