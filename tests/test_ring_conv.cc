/**
 * @file
 * Tests for ring-tensor convolution: the expand/project adjoint pair,
 * FRCONV vs RCONV equivalence for every ring, and the directional ReLU.
 */
#include <gtest/gtest.h>

#include <random>

#include "core/ring_conv.h"
#include "tensor/image_ops.h"

namespace ringcnn {
namespace {

RingConvWeights
random_weights(int co, int ci, int k, int n, std::mt19937& rng)
{
    RingConvWeights w(co, ci, k, n);
    std::normal_distribution<float> dist(0.0f, 0.5f);
    for (auto& v : w.w) v = dist(rng);
    return w;
}

class RingConvAllRings : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RingConvAllRings, FastMatchesReference)
{
    const Ring& ring = get_ring(GetParam());
    std::mt19937 rng(21);
    const int co = 2, ci = 3, k = 3;
    const RingConvWeights w = random_weights(co, ci, k, ring.n, rng);
    Tensor x({ci * ring.n, 7, 6});
    x.randn(rng);
    std::vector<float> bias(static_cast<size_t>(co * ring.n));
    std::normal_distribution<float> dist(0.0f, 0.1f);
    for (auto& b : bias) b = dist(rng);

    const Tensor ref = ring_conv_reference(ring, x, w, bias);
    const Tensor fast = ring_conv_fast(ring, x, w, bias);
    EXPECT_LT(mse(ref, fast), 1e-9) << ring.name;
}

TEST_P(RingConvAllRings, OneByOneKernel)
{
    const Ring& ring = get_ring(GetParam());
    std::mt19937 rng(22);
    const RingConvWeights w = random_weights(2, 2, 1, ring.n, rng);
    Tensor x({2 * ring.n, 4, 4});
    x.randn(rng);
    const Tensor ref = ring_conv_reference(ring, x, w, {});
    const Tensor fast = ring_conv_fast(ring, x, w, {});
    EXPECT_LT(mse(ref, fast), 1e-9) << ring.name;
}

INSTANTIATE_TEST_SUITE_P(AllRings, RingConvAllRings,
                         ::testing::ValuesIn(all_ring_names()),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (char& c : n) {
                                 if (c == '-') c = '_';
                             }
                             return n;
                         });

TEST(ExpandToReal, UnityWeightGivesIdentityBlocks)
{
    const Ring& ring = get_ring("RH4");
    RingConvWeights w(1, 1, 1, 4);
    for (int c = 0; c < 4; ++c) {
        w.at(0, 0, 0, 0, c) = static_cast<float>(ring.unity[static_cast<size_t>(c)]);
    }
    const Tensor real = expand_to_real(ring, w);
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            EXPECT_FLOAT_EQ(real.at(i, j, 0, 0), i == j ? 1.0f : 0.0f);
        }
    }
}

TEST(ExpandProject, AdjointInnerProductIdentity)
{
    // <expand(g), W> == <g, project(W)> for all rings: the projection is
    // the exact adjoint used by backprop.
    std::mt19937 rng(23);
    for (const auto& name : all_ring_names()) {
        const Ring& ring = get_ring(name);
        const RingConvWeights g = random_weights(2, 2, 3, ring.n, rng);
        Tensor wreal({2 * ring.n, 2 * ring.n, 3, 3});
        wreal.randn(rng);
        const Tensor eg = expand_to_real(ring, g);
        double lhs = 0.0;
        for (int64_t i = 0; i < eg.numel(); ++i) lhs += static_cast<double>(eg[i]) * wreal[i];
        const RingConvWeights pw = project_from_real_grad(ring, wreal);
        double rhs = 0.0;
        for (size_t i = 0; i < g.w.size(); ++i) rhs += static_cast<double>(g.w[i]) * pw.w[i];
        EXPECT_NEAR(lhs, rhs, 1e-4 * (std::fabs(lhs) + 1.0)) << name;
    }
}

TEST(ExpandToReal, RealRingIsPassthrough)
{
    const Ring& ring = get_ring("R");
    std::mt19937 rng(24);
    const RingConvWeights w = random_weights(3, 2, 3, 1, rng);
    const Tensor real = expand_to_real(ring, w);
    for (int co = 0; co < 3; ++co) {
        for (int ci = 0; ci < 2; ++ci) {
            for (int ky = 0; ky < 3; ++ky) {
                for (int kx = 0; kx < 3; ++kx) {
                    EXPECT_FLOAT_EQ(real.at(co, ci, ky, kx),
                                    w.at(co, ci, ky, kx, 0));
                }
            }
        }
    }
}

TEST(DirectionalRelu, IdentityOnHPositiveInputs)
{
    // If H y >= 0 component-wise then fH(y) = y.
    const auto [u, v] = fh_transforms(4);
    Tensor x({4, 2, 2});
    // y = (1/n) H r with r >= 0 guarantees V y = H y = r >= 0.
    const Matd h = hadamard(4);
    std::mt19937 rng(25);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    for (int yy = 0; yy < 2; ++yy) {
        for (int xx = 0; xx < 2; ++xx) {
            std::vector<double> r(4);
            for (double& q : r) q = dist(rng);
            const auto y = h.apply(r);  // H r
            for (int i = 0; i < 4; ++i) {
                x.at(i, yy, xx) = static_cast<float>(y[static_cast<size_t>(i)] / 4.0);
            }
        }
    }
    const Tensor out = directional_relu(u, v, x);
    EXPECT_LT(mse(out, x), 1e-12);
}

TEST(DirectionalRelu, EqualsComponentWiseForIdentityTransforms)
{
    Tensor x({4, 3, 3});
    std::mt19937 rng(26);
    x.randn(rng);
    const Matd id = Matd::identity(4);
    const Tensor out = directional_relu(id, id, x);
    for (int64_t i = 0; i < x.numel(); ++i) {
        EXPECT_FLOAT_EQ(out[i], std::max(0.0f, x[i]));
    }
}

TEST(DirectionalRelu, PositiveHomogeneity)
{
    const auto [u, v] = fh_transforms(2);
    Tensor x({2, 2, 2});
    std::mt19937 rng(27);
    x.randn(rng);
    Tensor x2 = x;
    x2 *= 3.0f;
    Tensor out = directional_relu(u, v, x);
    out *= 3.0f;
    const Tensor out2 = directional_relu(u, v, x2);
    EXPECT_LT(mse(out, out2), 1e-10);
}

TEST(DirectionalRelu, Fo4MatchesDefinition)
{
    const auto [u, v] = fo4_transforms();
    const Matd o = householder_o4();
    Tensor x({4, 1, 1});
    x.at(0, 0, 0) = 0.5f;
    x.at(1, 0, 0) = -1.0f;
    x.at(2, 0, 0) = 2.0f;
    x.at(3, 0, 0) = 0.25f;
    const Tensor out = directional_relu(u, v, x);
    // manual: r = relu(O y); z = O^{-1} r
    std::vector<double> y{0.5, -1.0, 2.0, 0.25};
    auto r = o.apply(y);
    for (double& q : r) q = std::max(0.0, q);
    const auto z = o.inverse().apply(r);
    for (int i = 0; i < 4; ++i) {
        EXPECT_NEAR(out.at(i, 0, 0), z[static_cast<size_t>(i)], 1e-6);
    }
}

TEST(RingConvFast, RealRingEqualsPlainConv)
{
    const Ring& ring = get_ring("R");
    std::mt19937 rng(28);
    const RingConvWeights w = random_weights(4, 3, 3, 1, rng);
    Tensor x({3, 6, 5});
    x.randn(rng);
    const Tensor expanded = expand_to_real(ring, w);
    const Tensor want = conv2d_same(x, expanded, {});
    const Tensor got = ring_conv_fast(ring, x, w, {});
    EXPECT_LT(mse(want, got), 1e-10);
}

}  // namespace
}  // namespace ringcnn
