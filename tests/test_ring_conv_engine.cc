/**
 * @file
 * Equivalence and robustness tests for RingConvEngine.
 *
 * The engine promises results bit-identical to the original (seed)
 * ring_conv_fast loop nest, invariant under thread count, row banding,
 * and batching. To prove that against the original numerics — and not
 * against the engine-backed wrapper ring_conv_fast() now is — this file
 * keeps a verbatim copy of the seed per-pixel implementation as the
 * oracle.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "core/ring_conv_engine.h"
#include "nn/layer.h"
#include "tensor/image_ops.h"

namespace ringcnn {
namespace {

/** The seed FRCONV implementation, kept verbatim as the bit-exactness
 *  oracle for the engine. */
Tensor
seed_frconv(const Ring& ring, const Tensor& x, const RingConvWeights& w,
            const std::vector<float>& bias)
{
    const int n = ring.n;
    const int m = ring.fast.m();
    const int ci_t = x.dim(0) / n;
    const int h = x.dim(1), wd = x.dim(2);
    const Matd& tg = ring.fast.tg;
    const Matd& tx = ring.fast.tx;
    const Matd& tz = ring.fast.tz;
    const int pad = w.k / 2;

    Tensor xt({ci_t * m, h, wd});
    for (int t = 0; t < ci_t; ++t) {
        for (int r = 0; r < m; ++r) {
            for (int y = 0; y < h; ++y) {
                for (int xx = 0; xx < wd; ++xx) {
                    double acc = 0.0;
                    for (int j = 0; j < n; ++j) {
                        const double c = tx.at(r, j);
                        if (c != 0.0) acc += c * x.at(t * n + j, y, xx);
                    }
                    xt.at(t * m + r, y, xx) = static_cast<float>(acc);
                }
            }
        }
    }

    std::vector<double> gt(static_cast<size_t>(w.co_t) * ci_t * w.k * w.k * m);
    auto gt_at = [&](int co, int ci, int ky, int kx, int r) -> double& {
        return gt[(((static_cast<size_t>(co) * ci_t + ci) * w.k + ky) * w.k +
                   kx) * m + r];
    };
    for (int co = 0; co < w.co_t; ++co) {
        for (int ci = 0; ci < ci_t; ++ci) {
            for (int ky = 0; ky < w.k; ++ky) {
                for (int kx = 0; kx < w.k; ++kx) {
                    for (int r = 0; r < m; ++r) {
                        double acc = 0.0;
                        for (int k = 0; k < n; ++k) {
                            acc += tg.at(r, k) * w.at(co, ci, ky, kx, k);
                        }
                        gt_at(co, ci, ky, kx, r) = acc;
                    }
                }
            }
        }
    }

    Tensor out({w.co_t * n, h, wd});
    std::vector<double> acc(static_cast<size_t>(m));
    for (int co = 0; co < w.co_t; ++co) {
        for (int y = 0; y < h; ++y) {
            for (int xx = 0; xx < wd; ++xx) {
                std::fill(acc.begin(), acc.end(), 0.0);
                for (int ci = 0; ci < ci_t; ++ci) {
                    for (int ky = 0; ky < w.k; ++ky) {
                        const int iy = y + ky - pad;
                        if (iy < 0 || iy >= h) continue;
                        for (int kx = 0; kx < w.k; ++kx) {
                            const int ix = xx + kx - pad;
                            if (ix < 0 || ix >= wd) continue;
                            for (int r = 0; r < m; ++r) {
                                acc[static_cast<size_t>(r)] +=
                                    gt_at(co, ci, ky, kx, r) *
                                    xt.at(ci * m + r, iy, ix);
                            }
                        }
                    }
                }
                for (int i = 0; i < n; ++i) {
                    double z = bias.empty()
                                   ? 0.0
                                   : bias[static_cast<size_t>(co * n + i)];
                    for (int r = 0; r < m; ++r) {
                        z += tz.at(i, r) * acc[static_cast<size_t>(r)];
                    }
                    out.at(co * n + i, y, xx) = static_cast<float>(z);
                }
            }
        }
    }
    return out;
}

RingConvWeights
random_weights(int co, int ci, int k, int n, std::mt19937& rng)
{
    RingConvWeights w(co, ci, k, n);
    std::normal_distribution<float> dist(0.0f, 0.5f);
    for (auto& v : w.w) v = dist(rng);
    return w;
}

std::vector<float>
random_bias(int count, std::mt19937& rng)
{
    std::vector<float> b(static_cast<size_t>(count));
    std::normal_distribution<float> dist(0.0f, 0.1f);
    for (auto& v : b) v = dist(rng);
    return b;
}

void
expect_bit_identical(const Tensor& a, const Tensor& b, const std::string& tag)
{
    ASSERT_EQ(a.shape(), b.shape()) << tag;
    for (int64_t i = 0; i < a.numel(); ++i) {
        ASSERT_EQ(a[i], b[i]) << tag << " flat index " << i;
    }
}

class EngineAllRings : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EngineAllRings, StrictFp64BitIdenticalToSeedFrconv)
{
    const Ring& ring = get_ring(GetParam());
    std::mt19937 rng(91);
    RingConvEngineOptions strict;
    strict.strict_fp64 = true;
    // Odd and even spatial sizes, both kernel sizes, with/without bias.
    const int sizes[2][2] = {{7, 6}, {8, 9}};
    for (const auto& hw : sizes) {
        for (const int k : {1, 3}) {
            for (const bool with_bias : {false, true}) {
                const int co = 2, ci = 3;
                const RingConvWeights w =
                    random_weights(co, ci, k, ring.n, rng);
                Tensor x({ci * ring.n, hw[0], hw[1]});
                x.randn(rng);
                const std::vector<float> bias =
                    with_bias ? random_bias(co * ring.n, rng)
                              : std::vector<float>{};
                const std::string tag = ring.name + " k=" +
                    std::to_string(k) + " h=" + std::to_string(hw[0]) +
                    (with_bias ? " bias" : " nobias");

                const Tensor seed = seed_frconv(ring, x, w, bias);
                const RingConvEngine engine(ring, w, bias, strict);
                expect_bit_identical(engine.run(x), seed, "engine " + tag);
                // The free function must stay a faithful wrapper.
                expect_bit_identical(ring_conv_fast(ring, x, w, bias), seed,
                                     "wrapper " + tag);
                // The default fp32 SIMD path tracks the fp64 oracle to
                // normal float rounding.
                const RingConvEngine fast(ring, w, bias);
                EXPECT_FALSE(fast.strict_fp64());
                EXPECT_LT(max_abs_diff(fast.run(x), seed), 1e-4)
                    << "fp32 " << tag;
                // And FRCONV still matches RCONV up to float rounding.
                EXPECT_LT(mse(seed, ring_conv_reference(ring, x, w, bias)),
                          1e-9)
                    << tag;
            }
        }
    }
}

TEST_P(EngineAllRings, InvariantUnderThreadCountAndBanding)
{
    const Ring& ring = get_ring(GetParam());
    std::mt19937 rng(92);
    const RingConvWeights w = random_weights(3, 2, 3, ring.n, rng);
    Tensor x({2 * ring.n, 13, 11});
    x.randn(rng);
    const std::vector<float> bias = random_bias(3 * ring.n, rng);

    // Both kernel sets must be deterministic and banding-invariant.
    for (const bool strict : {false, true}) {
        RingConvEngineOptions ref_opt;
        ref_opt.threads = 1;
        ref_opt.row_band = 13;  // single band, single thread
        ref_opt.strict_fp64 = strict;
        const Tensor ref = RingConvEngine(ring, w, bias, ref_opt).run(x);
        for (const int threads : {2, 5, 0}) {
            for (const int band : {1, 4, 0}) {
                RingConvEngineOptions opt;
                opt.threads = threads;
                opt.row_band = band;
                opt.strict_fp64 = strict;
                const Tensor got = RingConvEngine(ring, w, bias, opt).run(x);
                expect_bit_identical(
                    got, ref,
                    ring.name + (strict ? " fp64" : " fp32") +
                        " threads=" + std::to_string(threads) +
                        " band=" + std::to_string(band));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllRings, EngineAllRings,
                         ::testing::ValuesIn(all_ring_names()),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (char& c : n) {
                                 if (c == '-') c = '_';
                             }
                             return n;
                         });

TEST(RingConvEngine, BatchedRunMatchesSingleRuns)
{
    const Ring& ring = get_ring("RH4");
    std::mt19937 rng(93);
    const RingConvWeights w = random_weights(2, 2, 3, ring.n, rng);
    const std::vector<float> bias = random_bias(2 * ring.n, rng);
    const RingConvEngine engine(ring, w, bias);

    // Different spatial sizes in one batch.
    std::vector<Tensor> xs;
    for (const int side : {6, 9, 12}) {
        Tensor x({2 * ring.n, side, side + 1});
        x.randn(rng);
        xs.push_back(x);
    }
    const std::vector<Tensor> outs = engine.run(xs);
    ASSERT_EQ(outs.size(), xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
        expect_bit_identical(outs[i], engine.run(xs[i]),
                             "batch image " + std::to_string(i));
    }
}

TEST(RingConvEngine, SetWeightsRederivesCache)
{
    const Ring& ring = get_ring("C");
    std::mt19937 rng(94);
    const RingConvWeights w1 = random_weights(2, 2, 3, ring.n, rng);
    const RingConvWeights w2 = random_weights(2, 2, 3, ring.n, rng);
    Tensor x({2 * ring.n, 8, 8});
    x.randn(rng);

    RingConvEngine engine(ring, w1, {});
    const Tensor first = engine.run(x);
    // Repeated runs against the cached transforms are deterministic.
    expect_bit_identical(engine.run(x), first, "repeat run");

    engine.set_weights(w2, {});
    expect_bit_identical(engine.run(x), RingConvEngine(ring, w2, {}).run(x),
                         "after set_weights");
}

TEST(RingConvEngine, ShapeMismatchesThrow)
{
    const Ring& ring = get_ring("RH4");
    std::mt19937 rng(95);
    const RingConvWeights w = random_weights(2, 2, 3, ring.n, rng);
    const RingConvEngine engine(ring, w, {});

    Tensor wrong_rank({2 * ring.n * 6 * 6});  // flattened buffer
    EXPECT_THROW(engine.run(wrong_rank), std::invalid_argument);

    Tensor wrong_channels({2 * ring.n + 1, 6, 6});
    EXPECT_THROW(engine.run(wrong_channels), std::invalid_argument);
    EXPECT_THROW(ring_conv_fast(ring, wrong_channels, w, {}),
                 std::invalid_argument);
    EXPECT_THROW(ring_conv_reference(ring, wrong_channels, w, {}),
                 std::invalid_argument);

    Tensor x({2 * ring.n, 6, 6});
    x.randn(rng);
    EXPECT_THROW(RingConvEngine(ring, w, std::vector<float>(3, 0.0f)),
                 std::invalid_argument);

    // Weights built for another tuple size must be rejected everywhere.
    const RingConvWeights w2 = random_weights(2, 2, 3, 2, rng);
    EXPECT_THROW(RingConvEngine(ring, w2, {}), std::invalid_argument);
    EXPECT_THROW(expand_to_real(ring, w2), std::invalid_argument);

    // Even kernels are not "same"-padding convolutions.
    const RingConvWeights weven = random_weights(2, 2, 2, ring.n, rng);
    EXPECT_THROW(RingConvEngine(ring, weven, {}), std::invalid_argument);
}

TEST(RingConvEngine, DirectionalReluChecksTupleAlignment)
{
    const auto [u, v] = fh_transforms(4);
    Tensor x({6, 4, 4});  // 6 channels is not a multiple of n=4
    EXPECT_THROW(directional_relu(u, v, x), std::invalid_argument);
}

TEST(RingConvEngine, LayerInferenceTracksWeightMutation)
{
    const Ring& ring = get_ring("RH4");
    std::mt19937 rng(96);
    nn::RingConv2d layer(ring, 2, 2, 3, rng);
    Tensor x({2 * ring.n, 8, 8});
    x.randn(rng);

    // Layer inference rides the default fp32 engine.
    const Tensor direct =
        RingConvEngine(ring, layer.weights(), layer.bias()).run(x);
    expect_bit_identical(layer.forward(x, false), direct, "layer inference");

    // Mutate parameters in place through the optimizer interface; the
    // version bump (ParamRef::mark_dirty) must rebuild the cached
    // engine.
    std::vector<nn::ParamRef> params;
    layer.collect_params(params);
    for (auto& p : params) {
        ASSERT_NE(p.version, nullptr) << p.name;
        for (auto& v : *p.value) v += 0.125f;
        p.mark_dirty();
    }
    const Tensor updated =
        RingConvEngine(ring, layer.weights(), layer.bias()).run(x);
    expect_bit_identical(layer.forward(x, false), updated,
                         "layer inference after in-place update");
    EXPECT_GT(mse(direct, updated), 0.0);
}

TEST(RingConvEngine, FusedEpiloguesMatchSeparateApplication)
{
    const Ring& ring = get_ring("RI4");
    std::mt19937 rng(97);
    const RingConvWeights w = random_weights(2, 2, 3, ring.n, rng);
    const std::vector<float> bias = random_bias(2 * ring.n, rng);
    Tensor x({2 * ring.n, 9, 7});
    x.randn(rng);

    const RingConvEngine plain(ring, w, bias);
    const Tensor conv = plain.run(x);

    // ReLU epilogue == clamping the unfused output.
    RingConvEngine fused_relu(ring, w, bias);
    fused_relu.set_epilogue(ConvEpilogue::kRelu);
    const Tensor got_relu = fused_relu.run(x);
    ASSERT_EQ(got_relu.shape(), conv.shape());
    for (int64_t i = 0; i < conv.numel(); ++i) {
        const float want = conv[i] > 0.0f ? conv[i] : 0.0f;
        ASSERT_EQ(got_relu[i], want) << "relu epilogue flat " << i;
    }

    // Directional epilogue == the fH transform pair applied per tuple,
    // in the same float arithmetic.
    const auto [u, v] = fh_transforms(ring.n);
    RingConvEngine fused_dir(ring, w, bias);
    fused_dir.set_epilogue(ConvEpilogue::kDirectional, &u, &v);
    const Tensor got_dir = fused_dir.run(x);
    const Tensor want_dir = directional_relu(u, v, conv);
    ASSERT_EQ(got_dir.shape(), want_dir.shape());
    EXPECT_LT(max_abs_diff(got_dir, want_dir), 1e-4);

    // Epilogues are an fp32-path feature; strict engines refuse them.
    RingConvEngineOptions strict;
    strict.strict_fp64 = true;
    RingConvEngine se(ring, w, bias, strict);
    EXPECT_THROW(se.set_epilogue(ConvEpilogue::kRelu),
                 std::invalid_argument);
}

}  // namespace
}  // namespace ringcnn
