/**
 * @file
 * Tests for the Section III-C proper-ring search. These encode the
 * paper's structural findings:
 *  - n=2: a single permutation class whose sign patterns give exactly
 *    RH2 (grank 2) and C (grank 3).
 *  - n=4: exactly two non-isomorphic permutation classes; the Klein
 *    class bottoms out at grank 4 with exactly {RH4, RO4}; the cyclic
 *    class bottoms out at grank 5 with exactly
 *    {RH4-I, RH4-II, RO4-I, RO4-II}.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/ring.h"
#include "core/ring_search.h"

namespace ringcnn {
namespace {

TEST(RingSearch, N2SinglePermutationClass)
{
    std::mt19937 rng(41);
    const RingSearchResult res = search_proper_rings(2, rng);
    EXPECT_EQ(res.num_permutations, 1);
    ASSERT_EQ(res.classes.size(), 1u);
    const auto& pc = res.classes[0];
    EXPECT_EQ(pc.num_sign_patterns, 2);  // S_01 free
    EXPECT_EQ(pc.num_associative, 2);    // RH2 and C
    EXPECT_EQ(pc.min_grank, 2);
    ASSERT_EQ(pc.min_grank_variants.size(), 1u);
    EXPECT_EQ(pc.min_grank_variants[0].registry_name, "RH2");
}

TEST(RingSearch, N2FindsComplexField)
{
    // The other associative sign pattern must be C with grank 3. Re-run
    // and inspect via identify_ring on all associative variants.
    std::mt19937 rng(42);
    const RingSearchResult res = search_proper_rings(2, rng);
    // The search keeps only min-grank variants; confirm C exists by
    // building the alternative sign pattern directly.
    SignPerm sp = res.classes[0].representative;
    sp.S(0, 1) = -1;
    const IndexingTensor m = IndexingTensor::from_sign_perm(sp);
    EXPECT_EQ(identify_ring(m), "C");
    EXPECT_TRUE(m.is_associative());
    const AlgebraDecomposition dec = decompose_algebra(m, rng);
    EXPECT_EQ(dec.grank(), 3);
}

TEST(RingSearch, N4ExactlyTwoPermutationClasses)
{
    std::mt19937 rng(43);
    const RingSearchResult res = search_proper_rings(4, rng);
    EXPECT_EQ(res.classes.size(), 2u);
}

TEST(RingSearch, N4KleinClassYieldsRh4AndRo4)
{
    std::mt19937 rng(44);
    const RingSearchResult res = search_proper_rings(4, rng);
    bool found = false;
    for (const auto& pc : res.classes) {
        if (pc.min_grank != 4) continue;
        found = true;
        std::set<std::string> names;
        for (const auto& fr : pc.min_grank_variants) {
            names.insert(fr.registry_name);
        }
        EXPECT_EQ(names, (std::set<std::string>{"RH4", "RO4"}));
        EXPECT_EQ(pc.min_grank_variants.size(), 2u);
    }
    EXPECT_TRUE(found) << "no permutation class with min grank 4";
}

TEST(RingSearch, N4CyclicClassYieldsFourGrank5Variants)
{
    std::mt19937 rng(45);
    const RingSearchResult res = search_proper_rings(4, rng);
    bool found = false;
    for (const auto& pc : res.classes) {
        if (pc.min_grank != 5) continue;
        found = true;
        std::set<std::string> names;
        for (const auto& fr : pc.min_grank_variants) {
            names.insert(fr.registry_name);
        }
        EXPECT_EQ(names, (std::set<std::string>{"RH4-I", "RH4-II", "RO4-I",
                                                "RO4-II"}));
        EXPECT_EQ(pc.min_grank_variants.size(), 4u);
    }
    EXPECT_TRUE(found) << "no permutation class with min grank 5";
}

TEST(RingSearch, DiscoveredVariantsPassAxioms)
{
    std::mt19937 rng(46);
    const RingSearchResult res = search_proper_rings(4, rng);
    for (const auto& pc : res.classes) {
        for (const auto& fr : pc.min_grank_variants) {
            EXPECT_TRUE(fr.mult.is_commutative());
            EXPECT_TRUE(fr.mult.is_associative());
            EXPECT_TRUE(fr.mult.has_exclusive_distribution());
            EXPECT_TRUE(fr.mult.unity().has_value());
            EXPECT_TRUE(fr.sp.satisfies_c1());
            EXPECT_TRUE(fr.sp.satisfies_c2());
        }
    }
}

TEST(RingSearch, CpCertificatesMatchGrank)
{
    // Slow path: CP-ALS certifies each surviving variant's grank.
    std::mt19937 rng(47);
    const RingSearchResult res = search_proper_rings(4, rng, true);
    for (const auto& pc : res.classes) {
        for (const auto& fr : pc.min_grank_variants) {
            EXPECT_EQ(fr.cp_rank, fr.grank) << fr.registry_name;
        }
    }
}

TEST(IdentifyRing, RecognizesRegistryTensors)
{
    for (const char* name : {"RI4", "RH4", "RO4", "RH4-I", "C", "H"}) {
        EXPECT_EQ(identify_ring(get_ring(name).mult), name);
    }
}

TEST(IdentifyRing, UnknownTensorGivesEmpty)
{
    IndexingTensor m(3);
    m.at(0, 0, 0) = 1;
    EXPECT_EQ(identify_ring(m), "");
}

}  // namespace
}  // namespace ringcnn
