/**
 * @file
 * Property tests for every registered ring: algebra axioms, the
 * isomorphic-matrix homomorphism, fast-algorithm equivalence, and the
 * structural claims of paper Table I (DoF, multiplication counts,
 * commutativity, unity).
 */
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "core/ring.h"

namespace ringcnn {
namespace {

std::vector<double>
random_tuple(int n, std::mt19937& rng)
{
    std::normal_distribution<double> dist(0.0, 1.0);
    std::vector<double> v(static_cast<size_t>(n));
    for (double& x : v) x = dist(rng);
    return v;
}

double
max_abs_diff(const std::vector<double>& a, const std::vector<double>& b)
{
    double m = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        m = std::max(m, std::fabs(a[i] - b[i]));
    }
    return m;
}

class RingProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    const Ring& ring() const { return get_ring(GetParam()); }
};

TEST_P(RingProperty, UnityIsTwoSided)
{
    const Ring& r = ring();
    std::mt19937 rng(1);
    for (int t = 0; t < 16; ++t) {
        const auto x = random_tuple(r.n, rng);
        EXPECT_LT(max_abs_diff(r.multiply(r.unity, x), x), 1e-9);
        EXPECT_LT(max_abs_diff(r.multiply(x, r.unity), x), 1e-9);
    }
}

TEST_P(RingProperty, DistributesOverAddition)
{
    const Ring& r = ring();
    std::mt19937 rng(2);
    for (int t = 0; t < 8; ++t) {
        const auto g = random_tuple(r.n, rng);
        const auto x = random_tuple(r.n, rng);
        const auto y = random_tuple(r.n, rng);
        std::vector<double> xy(x.size());
        for (size_t i = 0; i < x.size(); ++i) xy[i] = x[i] + y[i];
        const auto lhs = r.multiply(g, xy);
        const auto gx = r.multiply(g, x);
        const auto gy = r.multiply(g, y);
        std::vector<double> rhs(gx.size());
        for (size_t i = 0; i < gx.size(); ++i) rhs[i] = gx[i] + gy[i];
        EXPECT_LT(max_abs_diff(lhs, rhs), 1e-9);
    }
}

TEST_P(RingProperty, AssociativityExact)
{
    EXPECT_TRUE(ring().mult.is_associative());
}

TEST_P(RingProperty, AssociativityRandomTriples)
{
    const Ring& r = ring();
    std::mt19937 rng(3);
    for (int t = 0; t < 16; ++t) {
        const auto a = random_tuple(r.n, rng);
        const auto b = random_tuple(r.n, rng);
        const auto c = random_tuple(r.n, rng);
        const auto lhs = r.multiply(r.multiply(a, b), c);
        const auto rhs = r.multiply(a, r.multiply(b, c));
        EXPECT_LT(max_abs_diff(lhs, rhs), 1e-8);
    }
}

TEST_P(RingProperty, CommutativityFlagIsAccurate)
{
    const Ring& r = ring();
    EXPECT_EQ(r.mult.is_commutative(), r.commutative);
    std::mt19937 rng(4);
    bool observed_commutative = true;
    for (int t = 0; t < 16; ++t) {
        const auto a = random_tuple(r.n, rng);
        const auto b = random_tuple(r.n, rng);
        if (max_abs_diff(r.multiply(a, b), r.multiply(b, a)) > 1e-9) {
            observed_commutative = false;
        }
    }
    EXPECT_EQ(observed_commutative, r.commutative);
}

TEST_P(RingProperty, IsomorphicMatrixActsAsMultiplication)
{
    const Ring& r = ring();
    std::mt19937 rng(5);
    for (int t = 0; t < 8; ++t) {
        const auto g = random_tuple(r.n, rng);
        const auto x = random_tuple(r.n, rng);
        EXPECT_LT(max_abs_diff(r.isomorphic(g).apply(x), r.multiply(g, x)),
                  1e-9);
    }
}

TEST_P(RingProperty, IsomorphicMatrixIsAlgebraHomomorphism)
{
    // Lemma B.1: iso(a.b) = iso(a) iso(b) for associative rings.
    const Ring& r = ring();
    std::mt19937 rng(6);
    for (int t = 0; t < 8; ++t) {
        const auto a = random_tuple(r.n, rng);
        const auto b = random_tuple(r.n, rng);
        const Matd lhs = r.isomorphic(r.multiply(a, b));
        const Matd rhs = r.isomorphic(a) * r.isomorphic(b);
        EXPECT_LT(lhs.max_abs_diff(rhs), 1e-9);
    }
}

TEST_P(RingProperty, FastAlgorithmMatchesBilinearForm)
{
    const Ring& r = ring();
    std::mt19937 rng(7);
    EXPECT_LT(r.fast.verify(r.mult, rng, 128), 1e-9);
}

TEST_P(RingProperty, FastAlgorithmMultCountMatchesTableI)
{
    // Implemented multiplication counts; the quaternion ships a 10-mult
    // exact scheme against its theoretical grank of 8 (Howell-Lafon).
    static const std::map<std::string, int> want{
        {"R", 1},     {"RI2", 2},    {"RH2", 2},    {"C", 3},
        {"RI4", 4},   {"RH4", 4},    {"RO4", 4},    {"RH4-I", 5},
        {"RH4-II", 5}, {"RO4-I", 5}, {"RO4-II", 5}, {"H", 10},
        {"RI8", 8},   {"RH8", 8}};
    EXPECT_EQ(ring().fast.m(), want.at(GetParam()));
}

TEST_P(RingProperty, GrankMatchesTableI)
{
    static const std::map<std::string, int> want{
        {"R", 1},     {"RI2", 2},    {"RH2", 2},    {"C", 3},
        {"RI4", 4},   {"RH4", 4},    {"RO4", 4},    {"RH4-I", 5},
        {"RH4-II", 5}, {"RO4-I", 5}, {"RO4-II", 5}, {"H", 8},
        {"RI8", 8},   {"RH8", 8}};
    EXPECT_EQ(ring().grank, want.at(GetParam()));
}

TEST_P(RingProperty, DofIsN)
{
    EXPECT_EQ(ring().dof(), ring().n);
}

TEST_P(RingProperty, ProperRingsHaveSignPermForm)
{
    // All full-rank mixing rings (not RI / R) admit the eq. (9) form
    // with conditions C1 and C2.
    const std::string name = GetParam();
    if (name == "R" || name.rfind("RI", 0) == 0 || name == "H") return;
    const auto sp = ring().mult.to_sign_perm();
    ASSERT_TRUE(sp.has_value());
    EXPECT_TRUE(sp->is_latin_square());
    EXPECT_TRUE(sp->satisfies_c1());
    EXPECT_TRUE(sp->satisfies_c2());
    EXPECT_TRUE(ring().mult.has_exclusive_distribution());
}

INSTANTIATE_TEST_SUITE_P(AllRings, RingProperty,
                         ::testing::ValuesIn(all_ring_names()),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (char& c : n) {
                                 if (c == '-') c = '_';
                             }
                             return n;
                         });

TEST(ComplexRing, MatchesStdComplex)
{
    const Ring& r = get_ring("C");
    std::mt19937 rng(8);
    std::normal_distribution<double> dist(0, 1);
    for (int t = 0; t < 32; ++t) {
        const cdouble a(dist(rng), dist(rng));
        const cdouble b(dist(rng), dist(rng));
        const cdouble want = a * b;
        const auto got = r.multiply({a.real(), a.imag()},
                                    {b.real(), b.imag()});
        EXPECT_NEAR(got[0], want.real(), 1e-12);
        EXPECT_NEAR(got[1], want.imag(), 1e-12);
    }
}

TEST(QuaternionRing, HamiltonTable)
{
    const Ring& r = get_ring("H");
    auto e = [](int i) {
        std::vector<double> v(4, 0.0);
        v[static_cast<size_t>(i)] = 1.0;
        return v;
    };
    // i*j = k, j*k = i, k*i = j, i*i = -1.
    EXPECT_NEAR(r.multiply(e(1), e(2))[3], 1.0, 1e-12);
    EXPECT_NEAR(r.multiply(e(2), e(3))[1], 1.0, 1e-12);
    EXPECT_NEAR(r.multiply(e(3), e(1))[2], 1.0, 1e-12);
    EXPECT_NEAR(r.multiply(e(1), e(1))[0], -1.0, 1e-12);
    // Anti-commutativity: j*i = -k.
    EXPECT_NEAR(r.multiply(e(2), e(1))[3], -1.0, 1e-12);
}

TEST(QuaternionRing, NormIsMultiplicative)
{
    const Ring& r = get_ring("H");
    std::mt19937 rng(9);
    std::normal_distribution<double> dist(0, 1);
    for (int t = 0; t < 16; ++t) {
        std::vector<double> a(4), b(4);
        for (auto* v : {&a, &b}) {
            for (double& x : *v) x = dist(rng);
        }
        const auto ab = r.multiply(a, b);
        auto nrm = [](const std::vector<double>& v) {
            double s = 0;
            for (double x : v) s += x * x;
            return s;
        };
        EXPECT_NEAR(nrm(ab), nrm(a) * nrm(b), 1e-9 * (1 + nrm(a) * nrm(b)));
    }
}

TEST(XorRing, MatchesDefinition)
{
    const Ring& r = get_ring("RH4");
    std::mt19937 rng(10);
    std::normal_distribution<double> dist(0, 1);
    std::vector<double> g(4), x(4);
    for (double& v : g) v = dist(rng);
    for (double& v : x) v = dist(rng);
    const auto z = r.multiply(g, x);
    for (int i = 0; i < 4; ++i) {
        double want = 0.0;
        for (int j = 0; j < 4; ++j) want += g[static_cast<size_t>(i ^ j)] * x[static_cast<size_t>(j)];
        EXPECT_NEAR(z[static_cast<size_t>(i)], want, 1e-12);
    }
}

TEST(CyclicRing, MatchesCircularConvolution)
{
    const Ring& r = get_ring("RH4-I");
    std::mt19937 rng(11);
    std::normal_distribution<double> dist(0, 1);
    std::vector<double> g(4), x(4);
    for (double& v : g) v = dist(rng);
    for (double& v : x) v = dist(rng);
    const auto z = r.multiply(g, x);
    for (int i = 0; i < 4; ++i) {
        double want = 0.0;
        for (int j = 0; j < 4; ++j) {
            want += g[static_cast<size_t>(((i - j) % 4 + 4) % 4)] *
                    x[static_cast<size_t>(j)];
        }
        EXPECT_NEAR(z[static_cast<size_t>(i)], want, 1e-12);
    }
}

TEST(HadamardDiagonalization, RhRingsFollowTheoremA1)
{
    // G = H^{-1} diag(H g) H for the XOR-convolution rings.
    for (const char* name : {"RH2", "RH4", "RH8"}) {
        const Ring& r = get_ring(name);
        const Matd h = hadamard(r.n);
        const Matd hinv = h.inverse();
        std::mt19937 rng(12);
        std::normal_distribution<double> dist(0, 1);
        std::vector<double> g(static_cast<size_t>(r.n));
        for (double& v : g) v = dist(rng);
        const auto hg = h.apply(g);
        Matd d(r.n, r.n);
        for (int i = 0; i < r.n; ++i) d.at(i, i) = hg[static_cast<size_t>(i)];
        const Matd want = hinv * d * h;
        EXPECT_LT(r.isomorphic(g).max_abs_diff(want), 1e-9) << name;
    }
}

TEST(RingRegistry, NamesAndLookup)
{
    EXPECT_TRUE(has_ring("RH4-I"));
    EXPECT_FALSE(has_ring("RZ9"));
    EXPECT_EQ(all_ring_names().size(), 14u);
    EXPECT_EQ(paper_comparison_rings().size(), 11u);
}

TEST(RingRegistry, TwistedVariantsAreDistinct)
{
    // The four cyclic-permutation rings must be pairwise distinct tensors.
    const std::vector<std::string> names{"RH4-I", "RH4-II", "RO4-I", "RO4-II"};
    for (size_t a = 0; a < names.size(); ++a) {
        for (size_t b = a + 1; b < names.size(); ++b) {
            const auto& ma = get_ring(names[a]).mult;
            const auto& mb = get_ring(names[b]).mult;
            bool same = true;
            for (int i = 0; i < 4 && same; ++i) {
                for (int k = 0; k < 4 && same; ++k) {
                    for (int j = 0; j < 4 && same; ++j) {
                        if (ma.at(i, k, j) != mb.at(i, k, j)) same = false;
                    }
                }
            }
            EXPECT_FALSE(same) << names[a] << " vs " << names[b];
        }
    }
}

TEST(SemisimpleDerivation, ReproducesFastAlgorithms)
{
    // The generic eigen-based derivation must produce a working
    // m = reals + 3*pairs algorithm for every commutative ring.
    std::mt19937 rng(13);
    for (const char* name : {"RH2", "C", "RH4", "RO4", "RH4-I", "RH4-II",
                             "RO4-I", "RO4-II"}) {
        const Ring& r = get_ring(name);
        const auto fa = derive_semisimple(r.mult, rng);
        ASSERT_TRUE(fa.has_value()) << name;
        EXPECT_EQ(fa->m(), r.grank) << name;
        std::mt19937 vr(14);
        EXPECT_LT(fa->verify(r.mult, vr, 64), 1e-7) << name;
    }
}

TEST(AlgebraDecomposition, MatchesKnownStructures)
{
    std::mt19937 rng(15);
    // RH4 = R^4, RO4 = R^4, cyclic = R x R x C, C = C, quaternion: not
    // semisimple-commutative (pairs with repeated eigenvalues).
    auto dec = [&](const char* name) {
        return decompose_algebra(get_ring(name).mult, rng);
    };
    EXPECT_EQ(dec("RH4").real_eigs, 4);
    EXPECT_EQ(dec("RH4").complex_pairs, 0);
    EXPECT_EQ(dec("RO4").real_eigs, 4);
    EXPECT_EQ(dec("RH4-I").real_eigs, 2);
    EXPECT_EQ(dec("RH4-I").complex_pairs, 1);
    EXPECT_EQ(dec("RH4-I").grank(), 5);
    EXPECT_EQ(dec("C").complex_pairs, 1);
    EXPECT_EQ(dec("C").grank(), 3);
    EXPECT_FALSE(dec("H").semisimple);  // defective generic spectrum
}

TEST(SolveReconstruction, RecoversComplexScheme)
{
    // Given the 3-mult transforms of C, the solver must find a Tz making
    // the algorithm exact.
    const Ring& c = get_ring("C");
    const auto fa = solve_reconstruction(c.mult, c.fast.tg, c.fast.tx);
    ASSERT_TRUE(fa.has_value());
    std::mt19937 rng(16);
    EXPECT_LT(fa->verify(c.mult, rng, 64), 1e-9);
}

TEST(SolveReconstruction, RejectsInsufficientTransforms)
{
    // Two products cannot realize the complex multiplication.
    const Ring& c = get_ring("C");
    Matd tg{{1, 0}, {0, 1}};
    Matd tx{{1, 0}, {0, 1}};
    EXPECT_FALSE(solve_reconstruction(c.mult, tg, tx).has_value());
}

}  // namespace
}  // namespace ringcnn
