/**
 * @file
 * ServeServer tests: the shape-bucketed batching front end must be a
 * drop-in for per-request Model::infer —
 *
 *  - responses are BIT-identical to the single-request executor path,
 *    for every submission interleaving and batch composition;
 *  - mixed-shape storms exercise the per-shape plan cache's LRU
 *    rebind/evict machinery without ever mixing results up;
 *  - weight bumps between drains are picked up through the
 *    ParamRef::version counters (no stale-plan outputs, no recompiles);
 *  - partial batches flush after the linger deadline; malformed
 *    requests fail their own future and nothing else.
 *
 * The threaded queue + futures machinery is exactly where the CI
 * ASan/TSan-style checks earn their keep; keep sizes small so the
 * suite stays fast under sanitizers.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "models/backbones.h"
#include "quant/quant_model.h"
#include "serve/serve_server.h"
#include "tensor/image_ops.h"

namespace ringcnn {
namespace {

models::ErnetConfig
small_cfg()
{
    models::ErnetConfig cfg;
    cfg.channels = 8;
    cfg.blocks = 1;
    cfg.pump_ratio = 2;
    cfg.extra_pump = 0;
    return cfg;
}

nn::Model
small_model()
{
    return models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"),
                                     small_cfg());
}

void
expect_bit_equal(const Tensor& got, const Tensor& want, const char* what)
{
    ASSERT_EQ(got.shape(), want.shape()) << what;
    for (int64_t i = 0; i < want.numel(); ++i) {
        ASSERT_EQ(got[i], want[i]) << what << " flat " << i;
    }
}

TEST(ServeServer, ConcurrentClientsBitIdenticalToModelInfer)
{
    nn::Model model = small_model();
    std::mt19937 rng(51);
    constexpr int kClients = 4, kPerClient = 6;
    constexpr int kTotal = kClients * kPerClient;

    std::vector<Tensor> inputs;
    std::vector<Tensor> refs;
    for (int i = 0; i < kTotal; ++i) {
        Tensor x({3, 16, 16});
        x.rand_uniform(rng, 0.0f, 1.0f);
        refs.push_back(model.infer(x));
        inputs.push_back(std::move(x));
    }

    serve::ServeServer server(model);
    std::vector<std::future<Tensor>> futs(kTotal);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c]() {
            for (int i = c; i < kTotal; i += kClients) {
                futs[static_cast<size_t>(i)] =
                    server.submit(Tensor(inputs[static_cast<size_t>(i)]));
            }
        });
    }
    for (auto& t : clients) t.join();
    for (int i = 0; i < kTotal; ++i) {
        expect_bit_equal(futs[static_cast<size_t>(i)].get(),
                         refs[static_cast<size_t>(i)], "request");
    }

    server.drain();
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.requests, static_cast<uint64_t>(kTotal));
    EXPECT_EQ(st.completed, static_cast<uint64_t>(kTotal));
    EXPECT_EQ(st.failed, 0u);
    EXPECT_GE(st.batches, 1u);
    // Coalescing actually happened: fewer dispatches than requests.
    EXPECT_LT(st.batches, static_cast<uint64_t>(kTotal));
    EXPECT_GT(st.mean_batch(), 1.0);
    // One shape -> one compiled plan, reused across batches.
    EXPECT_EQ(st.plan_compiles, 1u);
    EXPECT_EQ(st.plan_rebinds, 0u);
}

TEST(ServeServer, MixedShapeStormKeepsResultsStraight)
{
    nn::Model model = small_model();
    std::mt19937 rng(52);
    const std::vector<Shape> shapes{
        {3, 16, 16}, {3, 12, 20}, {3, 8, 8}, {3, 20, 12}, {3, 24, 8}};

    // Cache bound BELOW the live shape count: the LRU must rebind plans
    // mid-storm and still never cross results between shapes.
    serve::ServeOptions opt;
    opt.max_plans = 2;
    opt.max_batch = 4;
    opt.workers = 1;  // deterministic plan accounting (no all-busy
                      // overflow compiles on many-core hosts)
    serve::ServeServer server(model, opt);

    constexpr int kRounds = 3;
    const int kTotal = static_cast<int>(shapes.size()) * kRounds * 2;
    std::vector<Tensor> inputs;
    std::vector<Tensor> refs;
    for (int i = 0; i < kTotal; ++i) {
        Tensor x(shapes[static_cast<size_t>(i) % shapes.size()]);
        x.rand_uniform(rng, 0.0f, 1.0f);
        refs.push_back(model.infer(x));
        inputs.push_back(std::move(x));
    }

    std::vector<std::future<Tensor>> futs(static_cast<size_t>(kTotal));
    std::vector<std::thread> clients;
    for (int c = 0; c < 2; ++c) {
        clients.emplace_back([&, c]() {
            for (int i = c; i < kTotal; i += 2) {
                futs[static_cast<size_t>(i)] =
                    server.submit(Tensor(inputs[static_cast<size_t>(i)]));
            }
        });
    }
    for (auto& t : clients) t.join();
    for (int i = 0; i < kTotal; ++i) {
        expect_bit_equal(futs[static_cast<size_t>(i)].get(),
                         refs[static_cast<size_t>(i)], "storm request");
    }

    server.drain();
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.completed, static_cast<uint64_t>(kTotal));
    EXPECT_EQ(st.failed, 0u);
    // 5 live shapes through a 2-plan cache: evictions (rebinds) MUST
    // have happened, and beyond the first fills every further shape
    // switch recycles an arena instead of compiling from scratch.
    EXPECT_EQ(st.plan_compiles, 2u);
    EXPECT_GE(st.plan_rebinds, 3u);
}

TEST(ServeServer, Int8ModeBitIdenticalToQuantizedForward)
{
    // The int8 serving mode instantiates the same queue + PlanCache
    // machinery over the quantized engine path; every response must be
    // bit-identical to a single-request QuantizedModel forward. The
    // integer plan is shape-agnostic, so mixed spatial sizes serve
    // from recycled cache slots without recompiling kernels.
    nn::Model model = small_model();
    std::mt19937 rng(57);
    std::vector<Tensor> calib;
    for (int i = 0; i < 2; ++i) {
        Tensor c({3, 16, 16});
        c.rand_uniform(rng, 0.0f, 1.0f);
        calib.push_back(std::move(c));
    }
    const quant::QuantizedModel qm(model, calib);

    const std::vector<Shape> shapes{{3, 16, 16}, {3, 8, 8}, {3, 12, 20}};
    constexpr int kTotal = 12;
    std::vector<Tensor> inputs;
    std::vector<Tensor> refs;
    for (int i = 0; i < kTotal; ++i) {
        Tensor x(shapes[static_cast<size_t>(i) % shapes.size()]);
        x.rand_uniform(rng, 0.0f, 1.0f);
        refs.push_back(qm.forward(x));
        inputs.push_back(std::move(x));
    }

    serve::ServeOptions opt;
    opt.max_batch = 4;
    opt.max_plans = 2;  // below the live shape count: rebinds happen
    opt.workers = 1;    // deterministic plan accounting
    serve::ServeServer server(qm, opt);
    std::vector<std::future<Tensor>> futs;
    futs.reserve(static_cast<size_t>(kTotal));
    for (int i = 0; i < kTotal; ++i) {
        futs.push_back(server.submit(Tensor(inputs[static_cast<size_t>(i)])));
    }
    for (int i = 0; i < kTotal; ++i) {
        expect_bit_equal(futs[static_cast<size_t>(i)].get(),
                         refs[static_cast<size_t>(i)], "int8 request");
    }
    server.drain();
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.completed, static_cast<uint64_t>(kTotal));
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.plan_compiles, 2u);
}

TEST(ServeServer, WeightBumpsBetweenDrainsArePickedUp)
{
    nn::Model model = small_model();
    std::mt19937 rng(53);
    Tensor x({3, 16, 16});
    x.rand_uniform(rng, 0.0f, 1.0f);

    serve::ServeServer server(model);
    const Tensor before = server.submit(Tensor(x)).get();
    server.drain();

    // Optimizer-style in-place update through ParamRef.
    for (auto& p : model.params()) {
        for (auto& v : *p.value) v += 0.03125f;
        p.mark_dirty();
    }

    const Tensor after = server.submit(Tensor(x)).get();
    server.drain();
    EXPECT_GT(mse(before, after), 0.0) << "stale plan: bump ignored";

    // The refreshed plan must agree with a freshly compiled executor —
    // and must NOT have been recompiled (version counters, not plans).
    nn::ModelExecutor fresh(model, {3, 16, 16});
    expect_bit_equal(after, fresh.run(x), "post-bump");
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.plan_compiles, 1u);
    EXPECT_EQ(st.plan_rebinds, 0u);
}

TEST(ServeServer, PartialBatchFlushesAfterLinger)
{
    nn::Model model = small_model();
    std::mt19937 rng(54);
    Tensor x({3, 16, 16});
    x.rand_uniform(rng, 0.0f, 1.0f);

    serve::ServeOptions opt;
    opt.max_batch = 64;  // never fills
    opt.linger_ms = 0.5;
    serve::ServeServer server(model, opt);

    // A single request must complete (within the linger, not hang).
    std::future<Tensor> fut = server.submit(Tensor(x));
    EXPECT_EQ(fut.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    expect_bit_equal(fut.get(), model.infer(x), "lone request");
}

TEST(ServeServer, MalformedRequestFailsOnlyItsFuture)
{
    nn::Model model = small_model();
    std::mt19937 rng(55);
    Tensor good({3, 16, 16});
    good.rand_uniform(rng, 0.0f, 1.0f);
    const Tensor want = model.infer(good);

    serve::ServeServer server(model);
    std::future<Tensor> ok1 = server.submit(Tensor(good));
    // Wrong channel count: compiles fail in the worker, surfaced on
    // the future. Wrong rank: rejected up front, before it can claim
    // (and on a full cache, waste) a plan slot.
    std::future<Tensor> bad = server.submit(Tensor({5, 16, 16}));
    std::future<Tensor> bad_rank = server.submit(Tensor({16, 16}));
    std::future<Tensor> ok2 = server.submit(Tensor(good));

    EXPECT_THROW(bad.get(), std::invalid_argument);
    EXPECT_THROW(bad_rank.get(), std::invalid_argument);
    expect_bit_equal(ok1.get(), want, "before bad");
    expect_bit_equal(ok2.get(), want, "after bad");

    server.drain();
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.failed, 2u);
}

TEST(ServeServer, SubmitViewIsZeroCopyAndBitIdentical)
{
    // The borrowed-input path must produce the same bits as the owning
    // path; the caller keeps the tensor alive until the future
    // resolves.
    nn::Model model = small_model();
    std::mt19937 rng(58);
    std::vector<Tensor> inputs;
    for (int i = 0; i < 6; ++i) {
        Tensor x({3, 16, 16});
        x.rand_uniform(rng, 0.0f, 1.0f);
        inputs.push_back(std::move(x));
    }

    serve::ServeServer server(model);
    std::vector<std::future<Tensor>> futs;
    for (auto& x : inputs) futs.push_back(server.submit_view(x));
    for (size_t i = 0; i < inputs.size(); ++i) {
        expect_bit_equal(futs[i].get(), model.infer(inputs[i]), "view");
    }
}

TEST(ServeServer, DeterministicUnderDifferentInterleavings)
{
    // The same request set submitted in two different orders (and
    // therefore batched differently) produces identical bits.
    nn::Model model = small_model();
    std::mt19937 rng(56);
    constexpr int kTotal = 10;
    std::vector<Tensor> inputs;
    for (int i = 0; i < kTotal; ++i) {
        Tensor x({3, 16, 16});
        x.rand_uniform(rng, 0.0f, 1.0f);
        inputs.push_back(std::move(x));
    }

    serve::ServeOptions opt;
    opt.max_batch = 3;
    auto run_order = [&](const std::vector<int>& order) {
        serve::ServeServer server(model, opt);
        std::vector<std::future<Tensor>> futs(kTotal);
        for (int i : order) {
            futs[static_cast<size_t>(i)] =
                server.submit(Tensor(inputs[static_cast<size_t>(i)]));
        }
        std::vector<Tensor> outs;
        for (auto& f : futs) outs.push_back(f.get());
        return outs;
    };

    std::vector<int> fwd(kTotal), rev(kTotal);
    for (int i = 0; i < kTotal; ++i) {
        fwd[static_cast<size_t>(i)] = i;
        rev[static_cast<size_t>(i)] = kTotal - 1 - i;
    }
    const std::vector<Tensor> a = run_order(fwd);
    const std::vector<Tensor> b = run_order(rev);
    for (int i = 0; i < kTotal; ++i) {
        expect_bit_equal(a[static_cast<size_t>(i)],
                         b[static_cast<size_t>(i)], "interleaving");
    }
}

TEST(ServeServer, ManyWorkersManyShapesUnderSanitizers)
{
    // Several server workers + several shapes in flight: the lock,
    // linger timing, and plan hand-off paths all race here — the
    // sanitizer job is the real assertion, bit-equality the functional
    // one.
    nn::Model model = small_model();
    std::mt19937 rng(57);
    const std::vector<Shape> shapes{{3, 16, 16}, {3, 8, 8}, {3, 12, 12}};

    serve::ServeOptions opt;
    opt.workers = 3;
    opt.max_batch = 2;
    opt.linger_ms = 0.05;
    serve::ServeServer server(model, opt);

    constexpr int kTotal = 30;
    std::vector<Tensor> inputs;
    std::vector<Tensor> refs;
    for (int i = 0; i < kTotal; ++i) {
        Tensor x(shapes[static_cast<size_t>(i) % shapes.size()]);
        x.rand_uniform(rng, 0.0f, 1.0f);
        refs.push_back(model.infer(x));
        inputs.push_back(std::move(x));
    }
    std::vector<std::future<Tensor>> futs(kTotal);
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
        clients.emplace_back([&, c]() {
            for (int i = c; i < kTotal; i += 3) {
                futs[static_cast<size_t>(i)] =
                    server.submit(Tensor(inputs[static_cast<size_t>(i)]));
            }
        });
    }
    for (auto& t : clients) t.join();
    for (int i = 0; i < kTotal; ++i) {
        expect_bit_equal(futs[static_cast<size_t>(i)].get(),
                         refs[static_cast<size_t>(i)], "mt request");
    }
    EXPECT_EQ(server.worker_count(), 3);
}

}  // namespace
}  // namespace ringcnn
