/**
 * @file
 * ServeServer tests: the shape-bucketed batching front end must be a
 * drop-in for per-request Model::infer —
 *
 *  - responses are BIT-identical to the single-request executor path,
 *    for every submission interleaving and batch composition;
 *  - mixed-shape storms exercise the per-shape plan cache's LRU
 *    rebind/evict machinery without ever mixing results up;
 *  - weight bumps between drains are picked up through the
 *    ParamRef::version counters (no stale-plan outputs, no recompiles);
 *  - partial batches flush after the linger deadline; malformed
 *    requests fail their own future and nothing else;
 *  - overload control: max_queue shed (typed OverloadError fast-fail)
 *    and block (backpressure that bounds the queue without losses),
 *    per-request deadlines dropped at batch formation (DeadlineError,
 *    counted in stats().expired, never a wasted kernel pass), and the
 *    adaptive linger schedule's monotonicity;
 *  - lifecycle: stop(kDrain|kAbort) races submitters without ever
 *    abandoning an accepted future (no broken_promise — the
 *    destructor-abandonment regression), kAbort typed-fails queued
 *    requests, and a worker claiming one bucket hands other
 *    dispatchable buckets to parked peers (lost-wakeup regression).
 *
 * The threaded queue + futures machinery is exactly where the CI
 * ASan/TSan-style checks earn their keep; keep sizes small so the
 * suite stays fast under sanitizers.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "models/backbones.h"
#include "quant/quant_model.h"
#include "serve/serve_server.h"
#include "tensor/image_ops.h"

namespace ringcnn {
namespace {

models::ErnetConfig
small_cfg()
{
    models::ErnetConfig cfg;
    cfg.channels = 8;
    cfg.blocks = 1;
    cfg.pump_ratio = 2;
    cfg.extra_pump = 0;
    return cfg;
}

nn::Model
small_model()
{
    return models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"),
                                     small_cfg());
}

void
expect_bit_equal(const Tensor& got, const Tensor& want, const char* what)
{
    ASSERT_EQ(got.shape(), want.shape()) << what;
    for (int64_t i = 0; i < want.numel(); ++i) {
        ASSERT_EQ(got[i], want[i]) << what << " flat " << i;
    }
}

TEST(ServeServer, ConcurrentClientsBitIdenticalToModelInfer)
{
    nn::Model model = small_model();
    std::mt19937 rng(51);
    constexpr int kClients = 4, kPerClient = 6;
    constexpr int kTotal = kClients * kPerClient;

    std::vector<Tensor> inputs;
    std::vector<Tensor> refs;
    for (int i = 0; i < kTotal; ++i) {
        Tensor x({3, 16, 16});
        x.rand_uniform(rng, 0.0f, 1.0f);
        refs.push_back(model.infer(x));
        inputs.push_back(std::move(x));
    }

    serve::ServeServer server(model);
    std::vector<std::future<Tensor>> futs(kTotal);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c]() {
            for (int i = c; i < kTotal; i += kClients) {
                futs[static_cast<size_t>(i)] =
                    server.submit(Tensor(inputs[static_cast<size_t>(i)]));
            }
        });
    }
    for (auto& t : clients) t.join();
    for (int i = 0; i < kTotal; ++i) {
        expect_bit_equal(futs[static_cast<size_t>(i)].get(),
                         refs[static_cast<size_t>(i)], "request");
    }

    server.drain();
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.requests, static_cast<uint64_t>(kTotal));
    EXPECT_EQ(st.completed, static_cast<uint64_t>(kTotal));
    EXPECT_EQ(st.failed, 0u);
    EXPECT_GE(st.batches, 1u);
    // Coalescing actually happened: fewer dispatches than requests.
    EXPECT_LT(st.batches, static_cast<uint64_t>(kTotal));
    EXPECT_GT(st.mean_batch(), 1.0);
    // One shape -> one compiled plan, reused across batches.
    EXPECT_EQ(st.plan_compiles, 1u);
    EXPECT_EQ(st.plan_rebinds, 0u);
}

TEST(ServeServer, MixedShapeStormKeepsResultsStraight)
{
    nn::Model model = small_model();
    std::mt19937 rng(52);
    const std::vector<Shape> shapes{
        {3, 16, 16}, {3, 12, 20}, {3, 8, 8}, {3, 20, 12}, {3, 24, 8}};

    // Cache bound BELOW the live shape count: the LRU must rebind plans
    // mid-storm and still never cross results between shapes.
    serve::ServeOptions opt;
    opt.max_plans = 2;
    opt.max_batch = 4;
    opt.workers = 1;  // deterministic plan accounting (no all-busy
                      // overflow compiles on many-core hosts)
    serve::ServeServer server(model, opt);

    constexpr int kRounds = 3;
    const int kTotal = static_cast<int>(shapes.size()) * kRounds * 2;
    std::vector<Tensor> inputs;
    std::vector<Tensor> refs;
    for (int i = 0; i < kTotal; ++i) {
        Tensor x(shapes[static_cast<size_t>(i) % shapes.size()]);
        x.rand_uniform(rng, 0.0f, 1.0f);
        refs.push_back(model.infer(x));
        inputs.push_back(std::move(x));
    }

    std::vector<std::future<Tensor>> futs(static_cast<size_t>(kTotal));
    std::vector<std::thread> clients;
    for (int c = 0; c < 2; ++c) {
        clients.emplace_back([&, c]() {
            for (int i = c; i < kTotal; i += 2) {
                futs[static_cast<size_t>(i)] =
                    server.submit(Tensor(inputs[static_cast<size_t>(i)]));
            }
        });
    }
    for (auto& t : clients) t.join();
    for (int i = 0; i < kTotal; ++i) {
        expect_bit_equal(futs[static_cast<size_t>(i)].get(),
                         refs[static_cast<size_t>(i)], "storm request");
    }

    server.drain();
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.completed, static_cast<uint64_t>(kTotal));
    EXPECT_EQ(st.failed, 0u);
    // 5 live shapes through a 2-plan cache: evictions (rebinds) MUST
    // have happened, and beyond the first fills every further shape
    // switch recycles an arena instead of compiling from scratch.
    EXPECT_EQ(st.plan_compiles, 2u);
    EXPECT_GE(st.plan_rebinds, 3u);
}

TEST(ServeServer, Int8ModeBitIdenticalToQuantizedForward)
{
    // The int8 serving mode instantiates the same queue + PlanCache
    // machinery over the quantized engine path; every response must be
    // bit-identical to a single-request QuantizedModel forward. The
    // integer plan is shape-agnostic, so mixed spatial sizes serve
    // from recycled cache slots without recompiling kernels.
    nn::Model model = small_model();
    std::mt19937 rng(57);
    std::vector<Tensor> calib;
    for (int i = 0; i < 2; ++i) {
        Tensor c({3, 16, 16});
        c.rand_uniform(rng, 0.0f, 1.0f);
        calib.push_back(std::move(c));
    }
    const quant::QuantizedModel qm(model, calib);

    const std::vector<Shape> shapes{{3, 16, 16}, {3, 8, 8}, {3, 12, 20}};
    constexpr int kTotal = 12;
    std::vector<Tensor> inputs;
    std::vector<Tensor> refs;
    for (int i = 0; i < kTotal; ++i) {
        Tensor x(shapes[static_cast<size_t>(i) % shapes.size()]);
        x.rand_uniform(rng, 0.0f, 1.0f);
        refs.push_back(qm.forward(x));
        inputs.push_back(std::move(x));
    }

    serve::ServeOptions opt;
    opt.max_batch = 4;
    opt.max_plans = 2;  // below the live shape count: rebinds happen
    opt.workers = 1;    // deterministic plan accounting
    serve::ServeServer server(qm, opt);
    std::vector<std::future<Tensor>> futs;
    futs.reserve(static_cast<size_t>(kTotal));
    for (int i = 0; i < kTotal; ++i) {
        futs.push_back(server.submit(Tensor(inputs[static_cast<size_t>(i)])));
    }
    for (int i = 0; i < kTotal; ++i) {
        expect_bit_equal(futs[static_cast<size_t>(i)].get(),
                         refs[static_cast<size_t>(i)], "int8 request");
    }
    server.drain();
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.completed, static_cast<uint64_t>(kTotal));
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.plan_compiles, 2u);
}

TEST(ServeServer, WeightBumpsBetweenDrainsArePickedUp)
{
    nn::Model model = small_model();
    std::mt19937 rng(53);
    Tensor x({3, 16, 16});
    x.rand_uniform(rng, 0.0f, 1.0f);

    serve::ServeServer server(model);
    const Tensor before = server.submit(Tensor(x)).get();
    server.drain();

    // Optimizer-style in-place update through ParamRef.
    for (auto& p : model.params()) {
        for (auto& v : *p.value) v += 0.03125f;
        p.mark_dirty();
    }

    const Tensor after = server.submit(Tensor(x)).get();
    server.drain();
    EXPECT_GT(mse(before, after), 0.0) << "stale plan: bump ignored";

    // The refreshed plan must agree with a freshly compiled executor —
    // and must NOT have been recompiled (version counters, not plans).
    nn::ModelExecutor fresh(model, {3, 16, 16});
    expect_bit_equal(after, fresh.run(x), "post-bump");
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.plan_compiles, 1u);
    EXPECT_EQ(st.plan_rebinds, 0u);
}

TEST(ServeServer, PartialBatchFlushesAfterLinger)
{
    nn::Model model = small_model();
    std::mt19937 rng(54);
    Tensor x({3, 16, 16});
    x.rand_uniform(rng, 0.0f, 1.0f);

    serve::ServeOptions opt;
    opt.max_batch = 64;  // never fills
    opt.linger_ms = 0.5;
    serve::ServeServer server(model, opt);

    // A single request must complete (within the linger, not hang).
    std::future<Tensor> fut = server.submit(Tensor(x));
    EXPECT_EQ(fut.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    expect_bit_equal(fut.get(), model.infer(x), "lone request");
}

TEST(ServeServer, MalformedRequestFailsOnlyItsFuture)
{
    nn::Model model = small_model();
    std::mt19937 rng(55);
    Tensor good({3, 16, 16});
    good.rand_uniform(rng, 0.0f, 1.0f);
    const Tensor want = model.infer(good);

    serve::ServeServer server(model);
    std::future<Tensor> ok1 = server.submit(Tensor(good));
    // Wrong channel count: compiles fail in the worker, surfaced on
    // the future. Wrong rank: rejected up front, before it can claim
    // (and on a full cache, waste) a plan slot.
    std::future<Tensor> bad = server.submit(Tensor({5, 16, 16}));
    std::future<Tensor> bad_rank = server.submit(Tensor({16, 16}));
    std::future<Tensor> ok2 = server.submit(Tensor(good));

    EXPECT_THROW(bad.get(), std::invalid_argument);
    EXPECT_THROW(bad_rank.get(), std::invalid_argument);
    expect_bit_equal(ok1.get(), want, "before bad");
    expect_bit_equal(ok2.get(), want, "after bad");

    server.drain();
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.failed, 2u);
}

TEST(ServeServer, SubmitViewIsZeroCopyAndBitIdentical)
{
    // The borrowed-input path must produce the same bits as the owning
    // path; the caller keeps the tensor alive until the future
    // resolves.
    nn::Model model = small_model();
    std::mt19937 rng(58);
    std::vector<Tensor> inputs;
    for (int i = 0; i < 6; ++i) {
        Tensor x({3, 16, 16});
        x.rand_uniform(rng, 0.0f, 1.0f);
        inputs.push_back(std::move(x));
    }

    serve::ServeServer server(model);
    std::vector<std::future<Tensor>> futs;
    for (auto& x : inputs) futs.push_back(server.submit_view(x));
    for (size_t i = 0; i < inputs.size(); ++i) {
        expect_bit_equal(futs[i].get(), model.infer(inputs[i]), "view");
    }
}

TEST(ServeServer, DeterministicUnderDifferentInterleavings)
{
    // The same request set submitted in two different orders (and
    // therefore batched differently) produces identical bits.
    nn::Model model = small_model();
    std::mt19937 rng(56);
    constexpr int kTotal = 10;
    std::vector<Tensor> inputs;
    for (int i = 0; i < kTotal; ++i) {
        Tensor x({3, 16, 16});
        x.rand_uniform(rng, 0.0f, 1.0f);
        inputs.push_back(std::move(x));
    }

    serve::ServeOptions opt;
    opt.max_batch = 3;
    auto run_order = [&](const std::vector<int>& order) {
        serve::ServeServer server(model, opt);
        std::vector<std::future<Tensor>> futs(kTotal);
        for (int i : order) {
            futs[static_cast<size_t>(i)] =
                server.submit(Tensor(inputs[static_cast<size_t>(i)]));
        }
        std::vector<Tensor> outs;
        for (auto& f : futs) outs.push_back(f.get());
        return outs;
    };

    std::vector<int> fwd(kTotal), rev(kTotal);
    for (int i = 0; i < kTotal; ++i) {
        fwd[static_cast<size_t>(i)] = i;
        rev[static_cast<size_t>(i)] = kTotal - 1 - i;
    }
    const std::vector<Tensor> a = run_order(fwd);
    const std::vector<Tensor> b = run_order(rev);
    for (int i = 0; i < kTotal; ++i) {
        expect_bit_equal(a[static_cast<size_t>(i)],
                         b[static_cast<size_t>(i)], "interleaving");
    }
}

TEST(ServeServer, ManyWorkersManyShapesUnderSanitizers)
{
    // Several server workers + several shapes in flight: the lock,
    // linger timing, and plan hand-off paths all race here — the
    // sanitizer job is the real assertion, bit-equality the functional
    // one.
    nn::Model model = small_model();
    std::mt19937 rng(57);
    const std::vector<Shape> shapes{{3, 16, 16}, {3, 8, 8}, {3, 12, 12}};

    serve::ServeOptions opt;
    opt.workers = 3;
    opt.max_batch = 2;
    opt.linger_ms = 0.05;
    serve::ServeServer server(model, opt);

    constexpr int kTotal = 30;
    std::vector<Tensor> inputs;
    std::vector<Tensor> refs;
    for (int i = 0; i < kTotal; ++i) {
        Tensor x(shapes[static_cast<size_t>(i) % shapes.size()]);
        x.rand_uniform(rng, 0.0f, 1.0f);
        refs.push_back(model.infer(x));
        inputs.push_back(std::move(x));
    }
    std::vector<std::future<Tensor>> futs(kTotal);
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
        clients.emplace_back([&, c]() {
            for (int i = c; i < kTotal; i += 3) {
                futs[static_cast<size_t>(i)] =
                    server.submit(Tensor(inputs[static_cast<size_t>(i)]));
            }
        });
    }
    for (auto& t : clients) t.join();
    for (int i = 0; i < kTotal; ++i) {
        expect_bit_equal(futs[static_cast<size_t>(i)].get(),
                         refs[static_cast<size_t>(i)], "mt request");
    }
    EXPECT_EQ(server.worker_count(), 3);
}

TEST(ServeServer, ShedBeyondMaxQueueIsTypedAndLossesNeverPerturbBatches)
{
    nn::Model model = small_model();
    std::mt19937 rng(60);
    Tensor x({3, 16, 16});
    x.rand_uniform(rng, 0.0f, 1.0f);
    const Tensor want = model.infer(x);

    // max_batch 8 with a long fixed linger: the first batch cannot
    // dispatch while the burst is submitted, so admissions beyond
    // max_queue=2 shed deterministically.
    serve::ServeOptions opt;
    opt.workers = 1;
    opt.max_batch = 8;
    opt.linger_ms = 40.0;
    opt.adaptive_linger = false;
    opt.max_queue = 2;
    opt.admission = serve::Admission::kShed;
    serve::ServeServer server(model, opt);

    constexpr int kOffered = 6;
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < kOffered; ++i) {
        futs.push_back(server.submit(Tensor(x)));
    }
    int completed = 0, shed = 0;
    for (auto& f : futs) {
        try {
            expect_bit_equal(f.get(), want, "admitted under shedding");
            ++completed;
        } catch (const serve::OverloadError&) {
            ++shed;
        }
    }
    // Exactly max_queue admitted; the rest typed-shed — and every
    // admitted response was bit-identical above (dropped requests
    // never perturb surviving batches).
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(shed, kOffered - 2);

    server.drain();
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.requests, static_cast<uint64_t>(kOffered));
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.shed, static_cast<uint64_t>(kOffered - 2));
    EXPECT_EQ(st.failed, static_cast<uint64_t>(kOffered - 2));
    // The bound held: never more than max_queue accepted-unfinished.
    EXPECT_LE(st.max_queue_depth, opt.max_queue);
    // Shed requests never joined a batch.
    EXPECT_EQ(st.batched, 2u);
}

TEST(ServeServer, BlockAdmissionBoundsQueueWithoutLosses)
{
    nn::Model model = small_model();
    std::mt19937 rng(61);
    constexpr int kClients = 3, kPerClient = 5;
    constexpr int kTotal = kClients * kPerClient;
    std::vector<Tensor> inputs;
    std::vector<Tensor> refs;
    for (int i = 0; i < kTotal; ++i) {
        Tensor x({3, 16, 16});
        x.rand_uniform(rng, 0.0f, 1.0f);
        refs.push_back(model.infer(x));
        inputs.push_back(std::move(x));
    }

    serve::ServeOptions opt;
    opt.workers = 1;
    opt.max_batch = 2;
    opt.linger_ms = 0.05;
    opt.max_queue = 2;
    opt.admission = serve::Admission::kBlock;
    serve::ServeServer server(model, opt);

    // A burst of submitters: beyond the bound they BLOCK (backpressure)
    // instead of shedding — every request completes, and the queue
    // never exceeded max_queue at any instant.
    std::vector<std::future<Tensor>> futs(kTotal);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c]() {
            for (int i = c; i < kTotal; i += kClients) {
                futs[static_cast<size_t>(i)] =
                    server.submit(Tensor(inputs[static_cast<size_t>(i)]));
            }
        });
    }
    for (auto& t : clients) t.join();
    for (int i = 0; i < kTotal; ++i) {
        expect_bit_equal(futs[static_cast<size_t>(i)].get(),
                         refs[static_cast<size_t>(i)], "blocked admission");
    }
    server.drain();
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.completed, static_cast<uint64_t>(kTotal));
    EXPECT_EQ(st.shed, 0u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_LE(st.max_queue_depth, opt.max_queue);
}

TEST(ServeServer, ExpiredDeadlineDroppedAtBatchFormation)
{
    nn::Model model = small_model();
    std::mt19937 rng(62);
    Tensor x({3, 16, 16});
    x.rand_uniform(rng, 0.0f, 1.0f);
    const Tensor want = model.infer(x);

    serve::ServeOptions opt;
    opt.workers = 1;
    opt.max_batch = 8;
    opt.linger_ms = 10.0;
    opt.adaptive_linger = false;
    serve::ServeServer server(model, opt);

    // An already-expired request and a live one land in the same
    // bucket; at batch formation the expired one is dropped (typed)
    // and only the live one runs.
    const auto past =
        std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
    std::future<Tensor> dead = server.submit(Tensor(x), past);
    std::future<Tensor> live = server.submit(Tensor(x));
    EXPECT_THROW(dead.get(), serve::DeadlineError);
    expect_bit_equal(live.get(), want, "live alongside expired");
    server.drain();
    serve::ServeStats st = server.stats();
    EXPECT_EQ(st.expired, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.failed, 1u);
    // The expired request never joined a batch: one batch of one.
    EXPECT_EQ(st.batches, 1u);
    EXPECT_EQ(st.batched, 1u);
    EXPECT_DOUBLE_EQ(st.mean_batch(), 1.0);

    // A bucket of ONLY expired requests forms no batch at all — no
    // kernel pass is spent on work nobody is waiting for.
    std::future<Tensor> dead2 = server.submit(Tensor(x), past);
    EXPECT_THROW(dead2.get(), serve::DeadlineError);
    server.drain();
    st = server.stats();
    EXPECT_EQ(st.expired, 2u);
    EXPECT_EQ(st.batches, 1u);

    // A generous future deadline serves normally.
    const auto soon =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    expect_bit_equal(server.submit(Tensor(x), soon).get(), want,
                     "future deadline");
}

TEST(ServeServer, AdaptiveLingerIsMonotoneInQueueDepth)
{
    serve::ServeOptions opt;
    opt.linger_ms = 4.0;
    opt.max_batch = 8;
    opt.adaptive_linger = true;
    // Idle bucket waits the full cap; a formed batch waits nothing;
    // in between, deeper queue => never a LONGER linger.
    EXPECT_DOUBLE_EQ(serve::ServeServer::effective_linger_ms(opt, 0), 4.0);
    double prev = serve::ServeServer::effective_linger_ms(opt, 0);
    for (size_t depth = 1; depth <= 12; ++depth) {
        const double cur =
            serve::ServeServer::effective_linger_ms(opt, depth);
        EXPECT_LE(cur, prev) << "depth " << depth;
        EXPECT_GE(cur, 0.0);
        prev = cur;
    }
    EXPECT_DOUBLE_EQ(
        serve::ServeServer::effective_linger_ms(opt, 8), 0.0);
    EXPECT_DOUBLE_EQ(
        serve::ServeServer::effective_linger_ms(opt, 100), 0.0);

    // The fixed policy (A/B baseline) ignores depth entirely.
    opt.adaptive_linger = false;
    for (size_t depth = 0; depth <= 12; ++depth) {
        EXPECT_DOUBLE_EQ(
            serve::ServeServer::effective_linger_ms(opt, depth), 4.0);
    }
}

TEST(ServeServer, MalformedSubmissionsLeaveMeanBatchUnchanged)
{
    // Regression (stats skew): mean_batch used to divide
    // completed + failed by batches, so fast-path-rejected malformed
    // requests — which never join a batch — inflated the reported
    // batching win.
    nn::Model model = small_model();
    std::mt19937 rng(63);
    Tensor good({3, 16, 16});
    good.rand_uniform(rng, 0.0f, 1.0f);

    serve::ServeOptions opt;
    opt.workers = 1;
    serve::ServeServer server(model, opt);
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 4; ++i) futs.push_back(server.submit(Tensor(good)));
    for (auto& f : futs) f.get();
    server.drain();
    const serve::ServeStats before = server.stats();
    EXPECT_GT(before.mean_batch(), 0.0);

    for (int i = 0; i < 3; ++i) {
        std::future<Tensor> bad = server.submit(Tensor({16, 16}));
        EXPECT_THROW(bad.get(), std::invalid_argument);
    }
    server.drain();
    const serve::ServeStats after = server.stats();
    EXPECT_EQ(after.failed, before.failed + 3);
    EXPECT_EQ(after.batched, before.batched);
    EXPECT_EQ(after.batches, before.batches);
    EXPECT_DOUBLE_EQ(after.mean_batch(), before.mean_batch());
}

TEST(ServeServer, StopRacingSubmittersNeverBreaksPromises)
{
    // The destructor-abandonment regression: a request accepted
    // between "drain observed empty" and "admission closed" used to be
    // destroyed unresolved, surfacing std::future_error
    // (broken_promise) on a future the API documents as resolving.
    // stop() now closes admission and sweeps the queue atomically:
    // every future obtained from a submit that did not throw MUST
    // resolve — a Tensor, or ShutdownError under kAbort. 100
    // iterations of submitters racing stop() in both modes; the
    // ASan/UBSan job turns any lifetime slip into a hard failure.
    nn::Model model = small_model();
    std::mt19937 rng(64);
    Tensor x({3, 8, 8});
    x.rand_uniform(rng, 0.0f, 1.0f);
    const Tensor want = model.infer(x);

    constexpr int kIters = 100;
    constexpr int kSubmitters = 2, kPerSubmitter = 4;
    for (int iter = 0; iter < kIters; ++iter) {
        serve::ServeOptions opt;
        opt.workers = 2;
        opt.max_batch = 2;
        opt.linger_ms = 0.05;
        serve::ServeServer server(model, opt);

        std::mutex fmu;
        std::vector<std::future<Tensor>> futs;
        std::vector<std::thread> subs;
        for (int c = 0; c < kSubmitters; ++c) {
            subs.emplace_back([&]() {
                for (int i = 0; i < kPerSubmitter; ++i) {
                    try {
                        std::future<Tensor> f = server.submit(Tensor(x));
                        std::lock_guard<std::mutex> g(fmu);
                        futs.push_back(std::move(f));
                    } catch (const serve::ShutdownError&) {
                        return;  // admission closed: allowed
                    }
                }
            });
        }
        // Race shutdown against the submitters, alternating modes.
        server.stop(iter % 2 == 0 ? serve::StopMode::kDrain
                                  : serve::StopMode::kAbort);
        for (auto& t : subs) t.join();

        for (auto& f : futs) {
            try {
                expect_bit_equal(f.get(), want, "drained under stop race");
            } catch (const serve::ShutdownError&) {
                // kAbort swept it: typed, documented.
            } catch (const std::future_error& e) {
                FAIL() << "iter " << iter
                       << ": broken promise — accepted request abandoned "
                          "by shutdown ("
                       << e.what() << ")";
            }
        }
        EXPECT_THROW(server.submit(Tensor(x)), serve::ShutdownError);
    }
}

TEST(ServeServer, AbortFailsQueuedFuturesTyped)
{
    nn::Model model = small_model();
    std::mt19937 rng(65);
    Tensor x({3, 16, 16});
    x.rand_uniform(rng, 0.0f, 1.0f);

    // A huge linger with an unfillable batch keeps every request
    // queued; kAbort must fail them all typed — promises are KEPT
    // (with an error), not broken.
    serve::ServeOptions opt;
    opt.workers = 1;
    opt.max_batch = 64;
    opt.linger_ms = 5000.0;
    opt.adaptive_linger = false;
    serve::ServeServer server(model, opt);

    constexpr int kQueued = 5;
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < kQueued; ++i) {
        futs.push_back(server.submit(Tensor(x)));
    }
    server.stop(serve::StopMode::kAbort);
    for (auto& f : futs) {
        EXPECT_THROW(f.get(), serve::ShutdownError);
    }
    const serve::ServeStats st = server.stats();
    EXPECT_EQ(st.aborted, static_cast<uint64_t>(kQueued));
    EXPECT_EQ(st.failed, static_cast<uint64_t>(kQueued));
    EXPECT_EQ(st.completed, 0u);
    EXPECT_EQ(st.batches, 0u);
    // Stop is idempotent and admission stays closed.
    server.stop(serve::StopMode::kDrain);
    EXPECT_THROW(server.submit(Tensor(x)), serve::ShutdownError);
}

TEST(ServeServer, TwoShapesTwoWorkersDispatchWithoutOversleeping)
{
    // Lost-wakeup regression: a worker claiming one dispatchable
    // bucket now notifies a parked peer when OTHER buckets are also
    // dispatchable — without it, the second shape could oversleep
    // until the next submit, up to a full linger window of avoidable
    // p99. With a 300 ms linger, both shapes completing well under one
    // window proves neither waited it out.
    nn::Model model = small_model();
    std::mt19937 rng(66);
    Tensor xa({3, 16, 16}), xb({3, 8, 8});
    xa.rand_uniform(rng, 0.0f, 1.0f);
    xb.rand_uniform(rng, 0.0f, 1.0f);
    const Tensor wa = model.infer(xa);
    const Tensor wb = model.infer(xb);

    serve::ServeOptions opt;
    opt.workers = 2;
    opt.max_batch = 2;
    opt.linger_ms = 300.0;
    opt.adaptive_linger = false;
    serve::ServeServer server(model, opt);
    // Warm both plans so compile time stays out of the timing check.
    server.submit(Tensor(xa)).get();
    server.submit(Tensor(xb)).get();

    for (int round = 0; round < 10; ++round) {
        const auto t0 = std::chrono::steady_clock::now();
        // Two full buckets become dispatchable back to back.
        std::future<Tensor> a1 = server.submit(Tensor(xa));
        std::future<Tensor> a2 = server.submit(Tensor(xa));
        std::future<Tensor> b1 = server.submit(Tensor(xb));
        std::future<Tensor> b2 = server.submit(Tensor(xb));
        expect_bit_equal(a1.get(), wa, "shape A");
        expect_bit_equal(a2.get(), wa, "shape A");
        expect_bit_equal(b1.get(), wb, "shape B");
        expect_bit_equal(b2.get(), wb, "shape B");
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        EXPECT_LT(ms, 250.0)
            << "round " << round
            << ": a dispatchable shape waited toward a full linger";
    }
}

}  // namespace
}  // namespace ringcnn
