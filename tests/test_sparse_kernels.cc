/**
 * @file
 * Sparsity-compiled kernel tests: ring-DOF pruning must COMPILE AWAY —
 * pruned tap tuples never enter the engines' compiled tap tables — and
 * doing so must not move a single bit.
 *
 *  - fp32: the sparse tap-table schedule is bit-identical to the dense
 *    tap-fused schedule AND the unfused PR-4 schedule with the same
 *    weights zeroed, across every registered ring, k in {1, 3}, and
 *    ring-DOF densities {1.0, 0.5, 0.25, 0.0};
 *  - int8: the quantized executor's sparse schedule is bit-identical
 *    to its dense schedule and to the scalar int64 QNode oracle;
 *  - the plan IR carries the nonzero-tap annotation (emitted during
 *    linearize from the live weights, surviving fuse_epilogues), the
 *    dump prints it, and the int8 plan's tuple-block counts agree with
 *    the fp32 plan's tuple counts;
 *  - sparse results are invariant under thread count;
 *  - sim::Accelerator MAC and weight-fetch counts decrease
 *    monotonically with density;
 *  - ring_dof_prune removes whole tuples at the exact requested rate,
 *    and apply_mask no longer bumps parameter versions when the masked
 *    weights are already zero (fine-tune steps must not invalidate
 *    warm engines).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "baselines/pruning.h"
#include "core/ring.h"
#include "nn/executor.h"
#include "nn/layer.h"
#include "nn/model.h"
#include "quant/quant_executor.h"
#include "quant/quant_model.h"
#include "sim/accelerator.h"

namespace ringcnn {
namespace {

/** Two ring convs around a ReLU, built directly on RingConv2d so every
 *  registered ring (including R, n=1) exercises the ring tap path. */
int
backbone_channels(const std::string& ring_name)
{
    const Ring& ring = get_ring(ring_name);
    return (8 + ring.n - 1) / ring.n * ring.n;  // >= 8 real channels
}

nn::Model
make_backbone(const std::string& ring_name, int k, std::mt19937& rng)
{
    const Ring& ring = get_ring(ring_name);
    const int c_t = backbone_channels(ring_name) / ring.n;
    auto seq = std::make_unique<nn::Sequential>();
    seq->add(std::make_unique<nn::RingConv2d>(ring, c_t, c_t, k, rng));
    seq->add(std::make_unique<nn::ReLU>());
    seq->add(std::make_unique<nn::RingConv2d>(ring, c_t, c_t, k, rng));
    return nn::Model("sparse_" + ring_name, std::move(seq));
}

Tensor
rand_image(int c, std::mt19937& rng)
{
    Tensor x({c, 9, 11});
    x.rand_uniform(rng, -1.0f, 1.0f);
    return x;
}

void
expect_bitwise_equal(const Tensor& a, const Tensor& b,
                     const std::string& label)
{
    ASSERT_EQ(a.shape(), b.shape()) << label;
    ASSERT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.numel()) * sizeof(float)),
              0)
        << label;
}

/** Bitwise equality up to the sign of exact zeros: the tap-fused
 *  accumulator starts from its first term where the unfused one starts
 *  from +0.0, so elements whose every term is -0.0 differ in zero sign
 *  only (documented in RingConvEngineOptions::tap_fused). */
void
expect_value_equal(const Tensor& a, const Tensor& b,
                   const std::string& label)
{
    ASSERT_EQ(a.shape(), b.shape()) << label;
    const float* pa = a.data();
    const float* pb = b.data();
    for (int64_t i = 0; i < a.numel(); ++i) {
        if (pa[i] == 0.0f && pb[i] == 0.0f) continue;  // +-0 compare equal
        ASSERT_EQ(std::memcmp(pa + i, pb + i, sizeof(float)), 0)
            << label << " at " << i << ": " << pa[i] << " vs " << pb[i];
    }
}

constexpr double kDensities[] = {1.0, 0.5, 0.25, 0.0};

TEST(SparseKernels, Fp32SparseVsDenseVsUnfusedBitIdentity)
{
    for (const std::string& ring_name : all_ring_names()) {
        const Ring& ring = get_ring(ring_name);
        for (int k : {1, 3}) {
            for (double density : kDensities) {
                const std::string label = ring_name + " k=" +
                    std::to_string(k) + " d=" + std::to_string(density);
                std::mt19937 rng(77);
                nn::Model model = make_backbone(ring_name, k, rng);
                baselines::ring_dof_prune(model, 1.0 - density);
                const int c = backbone_channels(ring_name);
                const Tensor x = rand_image(c, rng);

                nn::ExecutorOptions sparse_opt;  // sparse_taps = true
                nn::ExecutorOptions dense_opt;
                dense_opt.sparse_taps = false;
                nn::ExecutorOptions unfused_opt;
                unfused_opt.sparse_taps = false;
                unfused_opt.tap_fused = false;

                nn::ModelExecutor sparse(model, x.shape(), sparse_opt);
                nn::ModelExecutor dense(model, x.shape(), dense_opt);
                nn::ModelExecutor unfused(model, x.shape(), unfused_opt);
                const Tensor ys = sparse.run(x);
                expect_bitwise_equal(ys, dense.run(x), label + " vs dense");
                expect_value_equal(ys, unfused.run(x),
                                   label + " vs unfused");

                // The dense schedule compiles nothing away; the sparse
                // schedule excludes exactly the zero transformed taps
                // (all of them at density 0).
                EXPECT_EQ(dense.sparse_tap_skip_count(), 0) << label;
                EXPECT_GE(sparse.sparse_tap_skip_count(), 0) << label;
                if (density == 0.0) {
                    const int c_t = c / ring.n;
                    const int64_t per_conv = static_cast<int64_t>(c_t) *
                                             c_t * ring.fast.m() * k * k;
                    EXPECT_EQ(sparse.sparse_tap_skip_count(), 2 * per_conv)
                        << label;
                }
            }
        }
    }
}

TEST(SparseKernels, Int8SparseVsDenseVsScalarOracleBitIdentity)
{
    for (const std::string& ring_name : all_ring_names()) {
        for (int k : {1, 3}) {
            for (double density : kDensities) {
                const std::string label = ring_name + " k=" +
                    std::to_string(k) + " d=" + std::to_string(density);
                std::mt19937 rng(78);
                nn::Model model = make_backbone(ring_name, k, rng);
                baselines::ring_dof_prune(model, 1.0 - density);
                const int c = backbone_channels(ring_name);
                std::vector<Tensor> calib;
                calib.push_back(rand_image(c, rng));
                quant::QuantizedModel qm(model, calib);

                const quant::QAct in = qm.quantize_input(rand_image(c, rng));
                quant::QuantExecOptions dense_opt;
                dense_opt.sparse_taps = false;
                quant::QuantExecutor sparse(qm);
                quant::QuantExecutor dense(qm, dense_opt);
                const quant::QAct ys = sparse.run(in);
                const quant::QAct yd = dense.run(in);
                const quant::QAct yo = qm.root()->forward(in);
                EXPECT_EQ(ys.v, yd.v) << label << " sparse vs dense";
                EXPECT_EQ(ys.v, yo.v) << label << " sparse vs oracle";
                EXPECT_EQ(ys.frac, yo.frac) << label;

                EXPECT_EQ(dense.sparse_tap_skip_count(), 0) << label;
                if (density == 0.0 && sparse.fast_conv_count() == 2) {
                    // All expanded weights are zero: every tap of both
                    // convs was compiled away.
                    EXPECT_EQ(sparse.sparse_tap_skip_count(),
                              2 * static_cast<int64_t>(c) * c * k * k)
                        << label;
                } else if (density < 1.0) {
                    EXPECT_GT(sparse.sparse_tap_skip_count(), 0) << label;
                }
            }
        }
    }
}

TEST(SparseKernels, PlanCarriesSparsityAnnotationAcrossBackends)
{
    std::mt19937 rng(79);
    nn::Model model = make_backbone("RI4", 3, rng);
    baselines::ring_dof_prune(model, 0.5);
    const int c = backbone_channels("RI4");
    const int c_t = c / 4;
    const int64_t total = static_cast<int64_t>(c_t) * c_t * 9;
    const int64_t pruned = total / 2;  // floor(0.5 * total)

    nn::ModelExecutor fexec(model, {c, 9, 11});
    // The annotation is emitted at linearize time and must survive
    // fuse_epilogues: the first conv carries the fused ReLU AND its
    // nz/total counts.
    std::vector<const plan::OpIR*> fconvs;
    for (const auto& op : fexec.plan().ops) {
        if (op.kind == plan::OpKind::kRingConv && !op.fused) {
            fconvs.push_back(&op);
        }
    }
    ASSERT_EQ(fconvs.size(), 2u);
    EXPECT_EQ(fconvs[0]->epilogue, plan::Epilogue::kRelu);
    for (const auto* op : fconvs) {
        EXPECT_EQ(op->total_taps, total);
        EXPECT_EQ(op->nz_taps, total - pruned);
    }
    EXPECT_NE(fexec.plan().dump().find(
                  "nz=" + std::to_string(total - pruned) + "/" +
                  std::to_string(total)),
              std::string::npos);
    // Both executors reflect the same compiled-away fraction.
    EXPECT_EQ(fexec.sparse_tap_skip_count(),
              2 * pruned * get_ring("RI4").fast.m());

    std::vector<Tensor> calib;
    calib.push_back(rand_image(c, rng));
    quant::QuantizedModel qm(model, calib);
    quant::QuantExecutor qexec(qm);
    std::vector<const plan::OpIR*> qconvs;
    for (const auto& op : qexec.plan().ops) {
        if (op.kind == plan::OpKind::kRingConv && !op.fused) {
            qconvs.push_back(&op);
        }
    }
    ASSERT_EQ(qconvs.size(), 2u);
    for (size_t i = 0; i < qconvs.size(); ++i) {
        // Same tuple-block granularity, same totals. Quantization can
        // round a small surviving tuple to zero but never resurrect a
        // pruned one, so the int8 count is bounded by the fp32 count.
        EXPECT_EQ(qconvs[i]->total_taps, total);
        EXPECT_LE(qconvs[i]->nz_taps, fconvs[i]->nz_taps);
        EXPECT_GE(qconvs[i]->total_taps - qconvs[i]->nz_taps, pruned);
    }
}

TEST(SparseKernels, SparseScheduleIsThreadInvariant)
{
    for (const std::string& ring_name : {std::string("RI4"),
                                         std::string("RH4")}) {
        for (double density : kDensities) {
            std::mt19937 rng(81);
            nn::Model model = make_backbone(ring_name, 3, rng);
            baselines::ring_dof_prune(model, 1.0 - density);
            const int c = backbone_channels(ring_name);
            const Tensor x = rand_image(c, rng);
            nn::ExecutorOptions t1, t3;
            t1.threads = 1;
            t3.threads = 3;
            nn::ModelExecutor e1(model, x.shape(), t1);
            nn::ModelExecutor e3(model, x.shape(), t3);
            expect_bitwise_equal(e1.run(x), e3.run(x),
                                 ring_name + " d=" + std::to_string(density));
        }
    }
}

TEST(SparseKernels, SimMacsDecreaseMonotonicallyWithDensity)
{
    uint64_t prev_macs = 0, prev_wbits = 0;
    bool first = true;
    for (double density : kDensities) {
        std::mt19937 rng(82);
        nn::Model model = make_backbone("RI4", 3, rng);
        baselines::ring_dof_prune(model, 1.0 - density);
        const int c = backbone_channels("RI4");
        std::vector<Tensor> calib;
        calib.push_back(rand_image(c, rng));
        quant::QuantizedModel qm(model, calib);
        sim::SimConfig sc;
        sc.n = 4;
        sim::Accelerator acc(sc);
        const sim::SimStats s = acc.run(qm, rand_image(c, rng));
        if (!first) {
            EXPECT_LT(s.mac_ops, prev_macs) << "density " << density;
            EXPECT_LT(s.wmem_bits, prev_wbits) << "density " << density;
        }
        EXPECT_GT(s.cycles, 0u);
        if (density == 0.0) EXPECT_EQ(s.mac_ops, 0u);
        prev_macs = s.mac_ops;
        prev_wbits = s.wmem_bits;
        first = false;
    }
}

TEST(SparseKernels, RingDofPruneRemovesWholeTuplesAtExactRate)
{
    std::mt19937 rng(83);
    nn::Model model = make_backbone("RH4", 3, rng);
    const baselines::PruneMask mask = baselines::ring_dof_prune(model, 0.5);
    int64_t zero_tuples = 0, total_tuples = 0;
    for (const auto& p : model.params()) {
        if (p.name.find("ringconv.g") == std::string::npos) continue;
        const auto& vals = *p.value;
        for (size_t t = 0; t < vals.size(); t += 4) {
            ++total_tuples;
            int zeros = 0;
            for (size_t c = 0; c < 4; ++c) zeros += vals[t + c] == 0.0f;
            // Structured: a tuple is removed whole or left intact.
            EXPECT_TRUE(zeros == 0 || zeros == 4);
            zero_tuples += zeros == 4;
        }
    }
    EXPECT_EQ(zero_tuples, total_tuples / 2);
    // Mask density counts ALL param groups — biases are exempt, so the
    // overall keep rate sits above the 50% weight-tuple rate.
    int64_t total_scalars = 0;
    for (const auto& p : model.params()) {
        total_scalars += static_cast<int64_t>(p.value->size());
    }
    EXPECT_NEAR(mask.density(),
                1.0 - static_cast<double>(4 * zero_tuples) /
                          static_cast<double>(total_scalars),
                1e-9);
}

TEST(SparseKernels, ApplyMaskSkipsVersionBumpWhenAlreadyZero)
{
    std::mt19937 rng(84);
    nn::Model model = make_backbone("RI4", 3, rng);
    const baselines::PruneMask mask = baselines::ring_dof_prune(model, 0.5);

    auto versions = [&] {
        std::vector<uint64_t> out;
        for (const auto& p : model.params()) {
            out.push_back(p.version != nullptr ? *p.version : 0);
        }
        return out;
    };

    // Masked weights are already zero: re-applying the mask (what every
    // fine-tune post_step does when the optimizer left them untouched)
    // must not invalidate cached engines.
    const auto before = versions();
    baselines::apply_mask(model, mask);
    EXPECT_EQ(versions(), before);

    // An optimizer write to a masked weight does move a value: the
    // version must bump so the engines resync.
    auto params = model.params();
    for (size_t g = 0; g < params.size(); ++g) {
        const auto& keep = mask.keep[g];
        for (size_t i = 0; i < keep.size(); ++i) {
            if (!keep[i]) {
                (*params[g].value)[i] = 0.25f;
                params[g].mark_dirty();
                const auto perturbed = versions();
                baselines::apply_mask(model, mask);
                const auto after = versions();
                EXPECT_EQ((*params[g].value)[i], 0.0f);
                EXPECT_GT(after[g], perturbed[g]);
                return;
            }
        }
    }
    FAIL() << "mask pruned nothing";
}

}  // namespace
}  // namespace ringcnn
