/**
 * @file
 * Streaming layer tests: the halo tiler's bit-identity contract, the
 * SIMD temporal-delta reductions, the VideoPipeline reuse cache, and
 * the simulator's skipped-tile pricing.
 *
 * The load-bearing claim is the tiler's: every interior pixel of a
 * shifted (non-padded) tile window is BIT-identical to whole-image
 * inference — fp32 through the compiled executor and int8 through the
 * quantized engine — across every ring algebra and both kernel sizes.
 * Only frames smaller than the tile fall back to zero-padded windows,
 * where pixels within the halo of the pad boundary genuinely differ
 * and are PSNR-pinned instead.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <random>

#include "core/ring_conv.h"
#include "core/simd.h"
#include "nn/executor.h"
#include "nn/layer.h"
#include "nn/model.h"
#include "quant/quant_executor.h"
#include "quant/quant_model.h"
#include "serve/serve_server.h"
#include "sim/accelerator.h"
#include "stream/tiler.h"
#include "stream/video_pipeline.h"
#include "tensor/image_ops.h"

namespace ringcnn {
namespace {

/** `layers` ring convs (1 tuple channel in/out) with a pointwise ReLU
 *  between them — the minimal stack with a nontrivial halo. */
nn::Model
conv_stack(const Ring& ring, int k, int layers, unsigned seed)
{
    std::mt19937 rng(seed);
    auto seq = std::make_unique<nn::Sequential>();
    for (int l = 0; l < layers; ++l) {
        seq->add(std::make_unique<nn::RingConv2d>(ring, 1, 1, k, rng));
        if (l + 1 < layers) seq->add(std::make_unique<nn::ReLU>());
    }
    return nn::Model("stream-stack", std::move(seq));
}

/** The bench backbone shape: conv + directional ReLU on RI4, so the
 *  streaming tests also cover fused directional epilogues. */
nn::Model
dir_stack(int tuple_channels, int layers, unsigned seed)
{
    const Ring& ring = get_ring("RI4");
    std::mt19937 rng(seed);
    const auto [u, v] = fh_transforms(ring.n);
    auto seq = std::make_unique<nn::Sequential>();
    for (int l = 0; l < layers; ++l) {
        seq->add(std::make_unique<nn::RingConv2d>(ring, tuple_channels,
                                                  tuple_channels, 3, rng));
        seq->add(std::make_unique<nn::DirectionalReLU>(u, v));
    }
    return nn::Model("stream-dir-stack", std::move(seq));
}

Tensor
random_frame(const Shape& shape, unsigned seed)
{
    std::mt19937 rng(seed);
    Tensor t(shape);
    t.rand_uniform(rng, 0.0f, 1.0f);
    return t;
}

bool
same_bits(const Tensor& a, const Tensor& b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) * sizeof(float)) ==
               0;
}

/** Runs `frame` tile-by-tile through a tile-shaped executor and pastes
 *  interiors, i.e. the Tiler contract without the serving layer. */
Tensor
run_tiled(const stream::Tiler& tiler, nn::ModelExecutor& tile_exec,
          const Tensor& frame)
{
    Tensor out(tiler.out_frame_shape(frame.shape()));
    Tensor t;
    for (const stream::Tile& tl :
         tiler.tiles(frame.shape()[1], frame.shape()[2])) {
        tiler.extract(frame, tl, &t);
        tiler.paste(tile_exec.run(t), tl, &out);
    }
    return out;
}

// ---- simd::max_abs_diff reductions ------------------------------------

TEST(SimdMaxAbsDiff, F32MatchesScalarAcrossLengths)
{
    std::mt19937 rng(5);
    std::uniform_real_distribution<float> dist(-3.0f, 3.0f);
    for (const int64_t len : {0, 1, 3, 7, 8, 9, 31, 32, 33, 257, 4096}) {
        std::vector<float> a(static_cast<size_t>(len));
        std::vector<float> b(static_cast<size_t>(len));
        for (auto& v : a) v = dist(rng);
        for (auto& v : b) v = dist(rng);
        float want = 0.0f;
        for (int64_t i = 0; i < len; ++i) {
            want = std::max(want,
                            std::abs(a[static_cast<size_t>(i)] -
                                     b[static_cast<size_t>(i)]));
        }
        // max of exact per-lane |a-b| is order-independent: the
        // dispatched kernel must agree bit for bit with the scalar
        // walk, whatever ISA it picked.
        EXPECT_EQ(simd::max_abs_diff_f32(a.data(), b.data(), len), want)
            << "len=" << len;
    }
    // Equal inputs reduce to exactly zero.
    std::vector<float> c(100, 1.25f);
    EXPECT_EQ(simd::max_abs_diff_f32(c.data(), c.data(), 100), 0.0f);
}

TEST(SimdMaxAbsDiff, I8MatchesScalarAndCoversFullRange)
{
    std::mt19937 rng(6);
    std::uniform_int_distribution<int> dist(-128, 127);
    for (const int64_t len : {0, 1, 15, 31, 32, 33, 63, 64, 65, 1023}) {
        std::vector<int8_t> a(static_cast<size_t>(len));
        std::vector<int8_t> b(static_cast<size_t>(len));
        for (auto& v : a) v = static_cast<int8_t>(dist(rng));
        for (auto& v : b) v = static_cast<int8_t>(dist(rng));
        int want = 0;
        for (int64_t i = 0; i < len; ++i) {
            want = std::max(
                want, std::abs(static_cast<int>(a[static_cast<size_t>(i)]) -
                               static_cast<int>(b[static_cast<size_t>(i)])));
        }
        EXPECT_EQ(simd::max_abs_diff_i8(a.data(), b.data(), len), want)
            << "len=" << len;
    }
    // The extreme pair must come back as exactly 255 (the unsigned
    // trick in the AVX2 kernel must not saturate at 127).
    std::vector<int8_t> lo(40, -128);
    std::vector<int8_t> hi(40, 127);
    EXPECT_EQ(simd::max_abs_diff_i8(lo.data(), hi.data(), 40), 255);
}

// ---- halo analysis ----------------------------------------------------

TEST(TilerTraits, ConvStackHaloAndAlignment)
{
    const Ring& ri4 = get_ring("RI4");
    // Three 3x3 convs: radius 3. 1x1 convs: radius 0. Plain conv
    // stacks have no shuffles, so the grid is trivial and the spatial
    // scale is 1:1.
    {
        nn::Model m = conv_stack(ri4, 3, 3, 7);
        nn::ModelExecutor e(m, {ri4.n, 16, 16});
        const stream::TileTraits t = stream::analyze_plan(e.plan());
        ASSERT_TRUE(t.supported);
        EXPECT_EQ(t.halo, 3);
        EXPECT_EQ(t.align, 1);
        EXPECT_EQ(t.scale_num, 1);
        EXPECT_EQ(t.scale_den, 1);
    }
    {
        nn::Model m = conv_stack(ri4, 1, 2, 7);
        nn::ModelExecutor e(m, {ri4.n, 16, 16});
        const stream::TileTraits t = stream::analyze_plan(e.plan());
        ASSERT_TRUE(t.supported);
        EXPECT_EQ(t.halo, 0);
        EXPECT_EQ(t.align, 1);
    }
}

// ---- tiled vs whole-image equivalence, every ring ---------------------

class StreamAllRings : public ::testing::TestWithParam<std::string>
{
};

TEST_P(StreamAllRings, TiledMatchesWholeImageBitExactly)
{
    const Ring& ring = get_ring(GetParam());
    const int tile = 16;
    for (const int k : {1, 3}) {
        nn::Model model = conv_stack(ring, k, 2, 11);
        nn::ModelExecutor tile_exec(model, {ring.n, tile, tile});
        stream::Tiler tiler(tile_exec.plan());
        EXPECT_EQ(tiler.traits().halo, k == 1 ? 0 : 2);

        // Even and odd frame sizes, both larger than the tile, so
        // every window is shifted (never padded) and EVERY pixel —
        // interior by construction — must match whole-image inference
        // bit for bit.
        for (const auto& [fh, fw] : {std::pair{24, 20}, {23, 17}}) {
            const Tensor frame =
                random_frame({ring.n, fh, fw}, 100 + k);
            nn::ModelExecutor frame_exec(model, frame.shape());
            const Tensor want = frame_exec.run(frame);
            const Tensor got = run_tiled(tiler, tile_exec, frame);
            EXPECT_TRUE(same_bits(want, got))
                << ring.name << " k=" << k << " " << fh << "x" << fw
                << " max|d|=" << max_abs_diff(want, got);
        }
    }
}

TEST_P(StreamAllRings, TiledInt8MatchesWholeImageCodes)
{
    const Ring& ring = get_ring(GetParam());
    const int tile = 16, fh = 23, fw = 20;
    nn::Model model = conv_stack(ring, 3, 2, 13);
    const Tensor frame = random_frame({ring.n, fh, fw}, 17);

    // One quantized model (one calibration); quantization is
    // elementwise with a global input format, so extracting a tile and
    // quantizing commutes with quantizing the frame — zero padding
    // quantizes to code 0 either way.
    quant::QuantizedModel qm(model, {frame});
    quant::QuantExecutor qex(qm);
    const quant::QAct want = qex.run(qm.quantize_input(frame));

    nn::ModelExecutor tile_exec(model, {ring.n, tile, tile});
    stream::Tiler tiler(tile_exec.plan());
    Tensor t;
    for (const stream::Tile& tl : tiler.tiles(fh, fw)) {
        tiler.extract(frame, tl, &t);
        const quant::QAct got = qex.run(qm.quantize_input(t));
        ASSERT_EQ(got.frac, want.frac);
        for (int c = 0; c < want.channels(); ++c) {
            for (int y = tl.iy0; y < tl.iy1; ++y) {
                for (int x = tl.ix0; x < tl.ix1; ++x) {
                    ASSERT_EQ(got.at(c, y - tl.y0, x - tl.x0),
                              want.at(c, y, x))
                        << ring.name << " c=" << c << " y=" << y
                        << " x=" << x;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllRings, StreamAllRings,
                         ::testing::ValuesIn(all_ring_names()),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (char& c : n) {
                                 if (c == '-') c = '_';
                             }
                             return n;
                         });

// ---- the padded fallback (frame smaller than the tile) ----------------

TEST(Tiler, SmallFramePadsWithPinnedEdgeQuality)
{
    const Ring& ri4 = get_ring("RI4");
    nn::Model model = conv_stack(ri4, 3, 2, 19);
    const int tile = 16, fh = 12, fw = 10;
    nn::ModelExecutor tile_exec(model, {ri4.n, tile, tile});
    stream::Tiler tiler(tile_exec.plan());
    const int h = tiler.traits().halo;

    const std::vector<stream::Tile> tls = tiler.tiles(fh, fw);
    ASSERT_EQ(tls.size(), 1u);
    EXPECT_TRUE(tls[0].padded);

    const Tensor frame = random_frame({ri4.n, fh, fw}, 23);
    nn::ModelExecutor frame_exec(model, frame.shape());
    const Tensor want = frame_exec.run(frame);
    const Tensor got = run_tiled(tiler, tile_exec, frame);
    ASSERT_EQ(got.shape(), want.shape());

    // The frame sits flush with the window's top-left, so padding
    // semantics only diverge within the halo of the BOTTOM/RIGHT frame
    // edges (layer >= 2 taps there read activations bled past the
    // frame instead of whole-image zero padding). Everything farther
    // in is bit-identical; the whole frame is PSNR-pinned.
    for (int c = 0; c < want.shape()[0]; ++c) {
        for (int y = 0; y < fh - h; ++y) {
            for (int x = 0; x < fw - h; ++x) {
                ASSERT_EQ(got.at(c, y, x), want.at(c, y, x))
                    << "c=" << c << " y=" << y << " x=" << x;
            }
        }
    }
    double peak = 0.0;
    for (int64_t i = 0; i < want.numel(); ++i) {
        peak = std::max(peak, std::abs(static_cast<double>(want[i])));
    }
    EXPECT_GE(psnr(want, got, peak), 15.0);
}

// ---- shuffle stacks: alignment and scaled interiors -------------------

TEST(Tiler, RejectsTilesOffTheAlignmentGrid)
{
    // PixelUnshuffle(2) regroups 2x2 pixel blocks: window origins (and
    // hence tile/frame dims) must sit on the even grid.
    const Ring& ri4 = get_ring("RI4");
    std::mt19937 rng(29);
    auto seq = std::make_unique<nn::Sequential>();
    seq->add(std::make_unique<nn::PixelUnshuffle>(2));
    seq->add(std::make_unique<nn::RingConv2d>(ri4, 1, 1, 3, rng));
    seq->add(std::make_unique<nn::PixelShuffle>(2));
    nn::Model model("shuffle-stack", std::move(seq));

    nn::ModelExecutor even(model, {ri4.n / 4, 16, 16});
    const stream::TileTraits t = stream::analyze_plan(even.plan());
    ASSERT_TRUE(t.supported);
    EXPECT_EQ(t.align, 2);
    EXPECT_EQ(t.scale_num, 1);
    EXPECT_EQ(t.scale_den, 1);
    EXPECT_EQ(t.halo % 2, 0);  // rounded up onto the grid

    stream::Tiler tiler(even.plan());
    EXPECT_THROW(tiler.tiles(30, 15), std::invalid_argument);
}

TEST(Tiler, ShuffleStackTiledMatchesWholeImage)
{
    const Ring& ri4 = get_ring("RI4");
    std::mt19937 rng(31);
    auto seq = std::make_unique<nn::Sequential>();
    seq->add(std::make_unique<nn::PixelUnshuffle>(2));
    seq->add(std::make_unique<nn::RingConv2d>(ri4, 1, 1, 3, rng));
    seq->add(std::make_unique<nn::PixelShuffle>(2));
    nn::Model model("shuffle-stack", std::move(seq));

    const Shape tile_shape{ri4.n / 4, 16, 16};
    nn::ModelExecutor tile_exec(model, tile_shape);
    stream::Tiler tiler(tile_exec.plan());
    const Tensor frame = random_frame({ri4.n / 4, 26, 22}, 37);
    nn::ModelExecutor frame_exec(model, frame.shape());
    EXPECT_TRUE(
        same_bits(frame_exec.run(frame), run_tiled(tiler, tile_exec, frame)));
}

// ---- VideoPipeline ----------------------------------------------------

TEST(VideoPipeline, ThresholdZeroReusesBitExactly)
{
    nn::Model model = dir_stack(2, 2, 41);
    const Shape tile_shape{8, 16, 16};
    nn::ModelExecutor tile_exec(model, tile_shape);
    const int fhw = 64;

    const Tensor f0 = random_frame({8, fhw, fhw}, 43);
    Tensor f1 = f0;
    // Flip one pixel covered by exactly ONE window. Windows are 16
    // wide at stride 12 (halo 2), so the center tile's window
    // [24, 40) x [24, 40) owns [28, 36) x [28, 36) exclusively —
    // (32, 32) sits inside it, and exactly one tile recomputes.
    for (int c = 0; c < 8; ++c) f1.at(c, fhw / 2, fhw / 2) += 1.0f;

    nn::ModelExecutor frame_exec(model, f0.shape());
    const Tensor want0 = frame_exec.run(f0);
    const Tensor want1 = frame_exec.run(f1);

    serve::ServeServer server(model);
    stream::VideoOptions vo;
    vo.skip_threshold = 0.0;
    stream::VideoPipeline pipe(server, tile_exec.plan(), vo);
    const size_t n_tiles = pipe.tiler().tiles(fhw, fhw).size();

    auto fut_a = pipe.push(f0);
    auto fut_b = pipe.push(f0);  // identical: every tile reuses
    auto fut_c = pipe.push(f1);  // one tile recomputes
    EXPECT_TRUE(same_bits(fut_a.get(), want0));
    EXPECT_TRUE(same_bits(fut_b.get(), want0));
    EXPECT_TRUE(same_bits(fut_c.get(), want1));

    const stream::VideoStats s = pipe.stats();
    EXPECT_EQ(s.frames_pushed, 3u);
    EXPECT_EQ(s.tiles, 3 * n_tiles);
    EXPECT_EQ(s.computed, n_tiles + 1);
    EXPECT_EQ(s.skipped, 2 * n_tiles - 1);
    EXPECT_EQ(s.last_frame_skipped, n_tiles - 1);
}

TEST(VideoPipeline, DisabledThresholdComputesEveryTile)
{
    nn::Model model = dir_stack(1, 2, 47);
    nn::ModelExecutor tile_exec(model, {4, 16, 16});
    serve::ServeServer server(model);
    stream::VideoPipeline pipe(server, tile_exec.plan());  // skip off

    const Tensor f = random_frame({4, 32, 32}, 53);
    pipe.push(f).get();
    pipe.push(f).get();  // identical frame still computes fully
    const stream::VideoStats s = pipe.stats();
    EXPECT_EQ(s.skipped, 0u);
    EXPECT_EQ(s.computed, s.tiles);
}

TEST(VideoPipeline, EmitsInPushOrderAndDrains)
{
    nn::Model model = dir_stack(1, 2, 59);
    nn::ModelExecutor tile_exec(model, {4, 16, 16});
    nn::ModelExecutor frame_exec(model, {4, 32, 32});
    serve::ServeServer server(model);
    stream::VideoOptions vo;
    vo.skip_threshold = 0.0;
    vo.max_inflight_frames = 2;  // push must block, not fail, at 2
    stream::VideoPipeline pipe(server, tile_exec.plan(), vo);

    std::vector<Tensor> frames;
    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 6; ++i) {
        frames.push_back(random_frame({4, 32, 32}, 60 + i));
        futs.push_back(pipe.push(frames.back()));
    }
    for (int i = 0; i < 6; ++i) {
        EXPECT_TRUE(same_bits(futs[static_cast<size_t>(i)].get(),
                              frame_exec.run(frames[static_cast<size_t>(i)])))
            << "frame " << i;
    }
    pipe.drain();
    const stream::VideoStats s = pipe.stats();
    EXPECT_EQ(s.frames_pushed, 6u);
    EXPECT_EQ(s.frames_emitted, 6u);
}

TEST(VideoPipeline, RejectsMidStreamShapeChange)
{
    nn::Model model = dir_stack(1, 2, 61);
    nn::ModelExecutor tile_exec(model, {4, 16, 16});
    serve::ServeServer server(model);
    stream::VideoPipeline pipe(server, tile_exec.plan());
    pipe.push(random_frame({4, 32, 32}, 67)).get();
    EXPECT_THROW(pipe.push(random_frame({4, 32, 48}, 71)),
                 std::invalid_argument);
}

TEST(VideoPipeline, QuantSkipThresholdIsOneInputStep)
{
    nn::Model model = dir_stack(1, 2, 73);
    const Tensor calib = random_frame({4, 16, 16}, 79);
    quant::QuantizedModel qm(model, {calib});
    const double step = stream::quant_skip_threshold(qm);
    EXPECT_GT(step, 0.0);
    EXPECT_DOUBLE_EQ(step, qm.input_format().scale());
}

// ---- simulator pricing of skipped tiles -------------------------------

TEST(SimTileStream, SkippedTilesMoveBitsButFireNoMacs)
{
    nn::Model model = dir_stack(2, 2, 83);
    const Shape tile_shape{8, 16, 16};
    const Tensor calib = random_frame(tile_shape, 89);
    quant::QuantizedModel qm(model, {calib});

    sim::SimConfig sc;
    sc.n = get_ring("RI4").n;
    const sim::Accelerator acc(sc);

    const sim::SimStats one = acc.run(qm, calib);
    const sim::SimStats comp = acc.price_tile_stream(qm, tile_shape, 7, 0);
    const sim::SimStats skip = acc.price_tile_stream(qm, tile_shape, 0, 7);
    const sim::SimStats mix = acc.price_tile_stream(qm, tile_shape, 3, 4);

    // Computed tiles price exactly like the per-image schedule.
    EXPECT_EQ(comp.mac_ops, 7 * one.mac_ops);
    EXPECT_EQ(comp.cycles, 7 * one.cycles);
    EXPECT_EQ(comp.wmem_bits, 7 * one.wmem_bits);

    // Skipped tiles: DRAM/block-buffer traffic and compare datapath
    // only — no MACs, no weight fetches, no conv cycles — and strictly
    // cheaper in cycles than computing.
    EXPECT_EQ(skip.mac_ops, 0u);
    EXPECT_EQ(skip.wmem_bits, 0u);
    EXPECT_EQ(skip.conv3_cycles, 0u);
    EXPECT_GT(skip.bb_bits, 0u);
    EXPECT_GT(skip.cycles, 0u);
    EXPECT_LT(skip.cycles, comp.cycles);

    // The mix decomposes exactly (both totals scale per-tile costs).
    EXPECT_EQ(mix.mac_ops, 3 * one.mac_ops);
    EXPECT_EQ(mix.cycles, 3 * one.cycles + 4 * (skip.cycles / 7));
    EXPECT_EQ(mix.bb_bits, 3 * one.bb_bits + 4 * (skip.bb_bits / 7));
}

}  // namespace
}  // namespace ringcnn
