/**
 * @file
 * Unit tests for the tensor substrate: indexing, reference conv2d,
 * pixel (un)shuffle round trips, PSNR, resampling kernels.
 */
#include <gtest/gtest.h>

#include "tensor/image_ops.h"
#include "tensor/tensor.h"

namespace ringcnn {
namespace {

TEST(Tensor, IndexingRoundTrip)
{
    Tensor t({2, 3, 4});
    float v = 0.0f;
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 3; ++j) {
            for (int k = 0; k < 4; ++k) t.at(i, j, k) = v++;
        }
    }
    EXPECT_EQ(t.numel(), 24);
    EXPECT_FLOAT_EQ(t.at(0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(t.at(1, 2, 3), 23.0f);
    EXPECT_FLOAT_EQ(t[23], 23.0f);
}

TEST(Tensor, Arithmetic)
{
    Tensor a({2, 2});
    Tensor b({2, 2});
    a.fill(1.5f);
    b.fill(2.0f);
    Tensor c = a + b;
    EXPECT_FLOAT_EQ(c.at(1, 1), 3.5f);
    c -= a;
    EXPECT_FLOAT_EQ(c.at(0, 0), 2.0f);
    c *= 2.0f;
    EXPECT_FLOAT_EQ(c.at(0, 1), 4.0f);
    EXPECT_DOUBLE_EQ(c.sum(), 16.0);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 6});
    for (int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
    Tensor r = t.reshaped({3, 4});
    EXPECT_EQ(r.dim(0), 3);
    EXPECT_FLOAT_EQ(r.at(2, 3), 11.0f);
}

TEST(Conv2d, IdentityKernel)
{
    std::mt19937 rng(7);
    Tensor x({3, 8, 8});
    x.randn(rng);
    Tensor w({3, 3, 1, 1});
    for (int c = 0; c < 3; ++c) w.at(c, c, 0, 0) = 1.0f;
    const Tensor y = conv2d_same(x, w, {});
    EXPECT_LT(mse(x, y), 1e-12);
}

TEST(Conv2d, KnownAverageKernel)
{
    Tensor x({1, 3, 3});
    float v = 1.0f;
    for (int y = 0; y < 3; ++y) {
        for (int xx = 0; xx < 3; ++xx) x.at(0, y, xx) = v++;
    }
    Tensor w({1, 1, 3, 3});
    for (int ky = 0; ky < 3; ++ky) {
        for (int kx = 0; kx < 3; ++kx) w.at(0, 0, ky, kx) = 1.0f;
    }
    const Tensor y = conv2d_same(x, w, {});
    // Center tap sums all nine pixels: 45.
    EXPECT_FLOAT_EQ(y.at(0, 1, 1), 45.0f);
    // Corner (0,0) sums the 2x2 top-left block: 1+2+4+5 = 12.
    EXPECT_FLOAT_EQ(y.at(0, 0, 0), 12.0f);
}

TEST(Conv2d, BiasApplied)
{
    Tensor x({1, 4, 4});
    x.fill(0.0f);
    Tensor w({2, 1, 3, 3});
    const Tensor y = conv2d_same(x, w, {1.0f, -2.5f});
    EXPECT_FLOAT_EQ(y.at(0, 2, 2), 1.0f);
    EXPECT_FLOAT_EQ(y.at(1, 0, 3), -2.5f);
}

TEST(Conv2d, MatchesManualComputation)
{
    std::mt19937 rng(11);
    Tensor x({2, 5, 5});
    x.randn(rng);
    Tensor w({1, 2, 3, 3});
    w.randn(rng);
    const Tensor y = conv2d_same(x, w, {});
    // Manual value at an interior pixel (2, 3).
    double want = 0.0;
    for (int c = 0; c < 2; ++c) {
        for (int ky = 0; ky < 3; ++ky) {
            for (int kx = 0; kx < 3; ++kx) {
                want += static_cast<double>(w.at(0, c, ky, kx)) *
                        x.at(c, 2 + ky - 1, 3 + kx - 1);
            }
        }
    }
    EXPECT_NEAR(y.at(0, 2, 3), want, 1e-5);
}

TEST(PixelShuffle, RoundTrip)
{
    std::mt19937 rng(3);
    Tensor x({2, 8, 6});
    x.randn(rng);
    const Tensor down = pixel_unshuffle(x, 2);
    EXPECT_EQ(down.dim(0), 8);
    EXPECT_EQ(down.dim(1), 4);
    EXPECT_EQ(down.dim(2), 3);
    const Tensor up = pixel_shuffle(down, 2);
    EXPECT_LT(mse(x, up), 1e-14);
}

TEST(PixelShuffle, ChannelOrdering)
{
    Tensor x({1, 2, 2});
    x.at(0, 0, 0) = 1;
    x.at(0, 0, 1) = 2;
    x.at(0, 1, 0) = 3;
    x.at(0, 1, 1) = 4;
    const Tensor d = pixel_unshuffle(x, 2);
    EXPECT_FLOAT_EQ(d.at(0, 0, 0), 1);  // (dy=0, dx=0)
    EXPECT_FLOAT_EQ(d.at(1, 0, 0), 2);  // (dy=0, dx=1)
    EXPECT_FLOAT_EQ(d.at(2, 0, 0), 3);  // (dy=1, dx=0)
    EXPECT_FLOAT_EQ(d.at(3, 0, 0), 4);  // (dy=1, dx=1)
}

TEST(Psnr, KnownValue)
{
    Tensor a({1, 2, 2});
    Tensor b({1, 2, 2});
    b.fill(0.1f);
    // MSE = 0.01, peak = 1 -> PSNR = 20 dB.
    EXPECT_NEAR(psnr(a, b), 20.0, 1e-4);
}

TEST(Psnr, InfiniteForIdentical)
{
    Tensor a({1, 3, 3});
    a.fill(0.5f);
    EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Resample, BoxDownThenNearestUpPreservesConstant)
{
    Tensor x({1, 8, 8});
    x.fill(0.7f);
    const Tensor d = downsample_box(x, 4);
    EXPECT_EQ(d.dim(1), 2);
    EXPECT_FLOAT_EQ(d.at(0, 0, 0), 0.7f);
    const Tensor u = upsample_nearest(d, 4);
    EXPECT_LT(mse(x, u), 1e-12);
}

TEST(Resample, BilinearPreservesConstant)
{
    Tensor x({2, 4, 4});
    x.fill(-0.25f);
    const Tensor u = upsample_bilinear(x, 4);
    EXPECT_EQ(u.dim(1), 16);
    EXPECT_LT(mse(u, clamp(u, -0.25f, -0.25f)), 1e-12);
}

TEST(Clamp, Bounds)
{
    Tensor x({1, 1, 3});
    x.at(0, 0, 0) = -2.0f;
    x.at(0, 0, 1) = 0.5f;
    x.at(0, 0, 2) = 9.0f;
    const Tensor y = clamp(x, 0.0f, 1.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 1), 0.5f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 2), 1.0f);
}

}  // namespace
}  // namespace ringcnn
