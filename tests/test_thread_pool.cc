/**
 * @file
 * Tests for the persistent thread pool behind parallel_for: index
 * coverage, worker-id contracts, nested-call safety, cross-thread
 * submissions, and end-to-end determinism of the FRCONV engine under
 * different RINGCNN_THREADS settings.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/ring_conv_engine.h"
#include "util/thread_pool.h"

namespace ringcnn {
namespace {

/** RAII override of RINGCNN_THREADS (POSIX setenv). */
class ThreadsEnv
{
  public:
    explicit ThreadsEnv(int n)
    {
        const char* old = std::getenv("RINGCNN_THREADS");
        if (old != nullptr) saved_ = old;
        had_ = old != nullptr;
        setenv("RINGCNN_THREADS", std::to_string(n).c_str(), 1);
    }
    ~ThreadsEnv()
    {
        if (had_) {
            setenv("RINGCNN_THREADS", saved_.c_str(), 1);
        } else {
            unsetenv("RINGCNN_THREADS");
        }
    }

  private:
    std::string saved_;
    bool had_ = false;
};

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    for (const int threads : {1, 2, 7}) {
        const int64_t count = 10007;  // prime: uneven chunking
        std::vector<std::atomic<int>> hits(static_cast<size_t>(count));
        for (auto& h : hits) h.store(0);
        util::parallel_for(
            count,
            [&](int64_t i) { hits[static_cast<size_t>(i)].fetch_add(1); },
            threads);
        for (int64_t i = 0; i < count; ++i) {
            ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
                << "threads=" << threads << " index " << i;
        }
    }
}

TEST(ThreadPool, WorkerIdsAreDenseAndInRange)
{
    const int threads = 5;
    const int64_t count = 5000;
    std::vector<std::atomic<int>> per_worker(threads);
    for (auto& c : per_worker) c.store(0);
    util::parallel_for_worker(
        count,
        [&](int worker, int64_t) {
            ASSERT_GE(worker, 0);
            ASSERT_LT(worker, threads);
            per_worker[static_cast<size_t>(worker)].fetch_add(1);
        },
        threads);
    int total = 0;
    for (auto& c : per_worker) total += c.load();
    EXPECT_EQ(total, count);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    const int outer = 6, inner = 4321;
    std::vector<int64_t> sums(static_cast<size_t>(outer), 0);
    util::parallel_for(
        outer,
        [&](int64_t o) {
            // Nested loop: must complete (inline) and not corrupt the
            // per-outer accumulator even when the outer body runs on a
            // pool worker.
            int64_t local = 0;
            util::parallel_for(
                inner, [&](int64_t i) { local += i; }, 3);
            sums[static_cast<size_t>(o)] = local;
        },
        4);
    for (int o = 0; o < outer; ++o) {
        EXPECT_EQ(sums[static_cast<size_t>(o)],
                  static_cast<int64_t>(inner) * (inner - 1) / 2);
    }
}

TEST(ThreadPool, ConcurrentSubmittersSerializeSafely)
{
    std::atomic<int64_t> total{0};
    auto submit = [&]() {
        util::parallel_for(
            1000, [&](int64_t) { total.fetch_add(1); }, 3);
    };
    std::thread a(submit), b(submit);
    a.join();
    b.join();
    EXPECT_EQ(total.load(), 2000);
}

TEST(ThreadPool, RunParallelExecutesEveryJob)
{
    std::vector<std::atomic<int>> hits(16);
    for (auto& h : hits) h.store(0);
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 16; ++i) {
        jobs.push_back([&hits, i]() { hits[static_cast<size_t>(i)] = i + 1; });
    }
    util::run_parallel(std::move(jobs), 4);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), i + 1);
    }
}

TEST(ThreadPool, EngineDeterministicUnderThreadsEnv)
{
    // A layer big enough that the engine's work-based clamp actually
    // uses several workers at RINGCNN_THREADS=7.
    const Ring& ring = get_ring("RH4");
    std::mt19937 rng(71);
    RingConvWeights w(6, 6, 3, ring.n);
    std::normal_distribution<float> dist(0.0f, 0.5f);
    for (auto& v : w.w) v = dist(rng);
    Tensor x({6 * ring.n, 96, 96});
    x.randn(rng);

    Tensor ref;
    {
        ThreadsEnv env(1);
        ref = RingConvEngine(ring, w, {}).run(x);
    }
    for (const int n : {2, 7}) {
        ThreadsEnv env(n);
        const Tensor got = RingConvEngine(ring, w, {}).run(x);
        ASSERT_EQ(got.shape(), ref.shape());
        for (int64_t i = 0; i < ref.numel(); ++i) {
            ASSERT_EQ(got[i], ref[i])
                << "RINGCNN_THREADS=" << n << " flat " << i;
        }
    }
}

TEST(ThreadPool, ResolveThreadsHonorsEnvAndExplicitRequests)
{
    ThreadsEnv env(7);
    EXPECT_EQ(util::resolve_threads(0), 7);
    EXPECT_EQ(util::resolve_threads(3), 3);
    EXPECT_GE(util::hardware_threads(), 1);
}

TEST(ThreadPool, HelperExceptionPropagatesToSubmitter)
{
    // A helper-thread throw must surface on the submitting thread as
    // the thrown exception — not std::terminate, and not a hang. The
    // first thrown exception wins; the loop still retires every index
    // slot so the pool is reusable afterwards.
    for (const int threads : {2, 7}) {
        bool caught = false;
        try {
            util::parallel_for(
                10007,
                [&](int64_t i) {
                    if (i == 4242) {
                        throw std::runtime_error("injected task failure");
                    }
                },
                threads);
        } catch (const std::runtime_error& e) {
            caught = true;
            EXPECT_STREQ(e.what(), "injected task failure");
        }
        EXPECT_TRUE(caught) << "threads=" << threads;
    }
}

TEST(ThreadPool, ExceptionOnEveryIndexStillPropagatesOnce)
{
    // Concurrent throws race for the error slot; exactly one must win
    // and the rest park silently — no terminate, no leak, no deadlock.
    bool caught = false;
    try {
        util::parallel_for(
            1000, [](int64_t) { throw std::runtime_error("all fail"); }, 4);
    } catch (const std::runtime_error&) {
        caught = true;
    }
    EXPECT_TRUE(caught);
}

TEST(ThreadPool, PoolIsReusableAfterAnExceptionalLoop)
{
    try {
        util::parallel_for(
            100, [](int64_t) { throw std::runtime_error("boom"); }, 3);
    } catch (const std::runtime_error&) {
    }
    // The pool must be fully retired and reusable: the next loop covers
    // every index exactly once.
    std::vector<std::atomic<int>> hits(512);
    for (auto& h : hits) h.store(0);
    util::parallel_for(
        512, [&](int64_t i) { hits[static_cast<size_t>(i)].fetch_add(1); },
        3);
    for (size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, WorkerVariantPropagatesExceptions)
{
    bool caught = false;
    try {
        util::parallel_for_worker(
            5000,
            [](int worker, int64_t i) {
                (void)worker;
                if (i == 999) throw std::logic_error("worker-variant");
            },
            4);
    } catch (const std::logic_error& e) {
        caught = true;
        EXPECT_STREQ(e.what(), "worker-variant");
    }
    EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace ringcnn
