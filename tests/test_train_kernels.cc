/**
 * @file
 * The SIMD training kernels (nn/conv_kernels.h) against the scalar
 * reference path, and the data-parallel trainer's determinism
 * contracts:
 *
 *  - forward and input-gradient passes are BIT-identical to the
 *    reference (same per-element multiply/add order, no FMA) across
 *    k in {1, 3}, odd/even sizes, bias on/off, and thread counts;
 *  - weight/bias gradients (float 8-lane reductions vs the reference's
 *    double accumulator) match to fp32 rounding and are bit-invariant
 *    under thread count;
 *  - train_on_task is bit-deterministic for a given worker count;
 *  - strict_reference mode reproduces the seed trainer's sequential
 *    per-step losses exactly (pinned against an inline replica of the
 *    seed loop);
 *  - the default SIMD-parallel path trains to the same quality as the
 *    strict reference.
 */
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <random>

#include "core/ring_conv.h"
#include "data/tasks.h"
#include "models/backbones.h"
#include "nn/conv_kernels.h"
#include "nn/layer.h"
#include "nn/trainer.h"
#include "tensor/image_ops.h"

namespace ringcnn::nn {
namespace {

/** RAII restore of the process-wide kernel options. */
struct KernelOptsGuard
{
    TrainKernelOptions saved = train_kernel_options();
    ~KernelOptsGuard() { train_kernel_options() = saved; }
};

struct Case
{
    int ci, co, h, w, k;
    bool bias;
};

std::vector<Case>
kernel_cases()
{
    // k in {1, 3}, odd/even heights and widths, with/without bias.
    return {
        {3, 4, 9, 7, 3, true},  {3, 4, 9, 7, 1, false},
        {2, 5, 8, 8, 3, false}, {5, 2, 8, 8, 1, true},
        {4, 4, 5, 12, 3, true}, {1, 6, 6, 5, 3, false},
        {6, 1, 7, 4, 1, true},
    };
}

TEST(TrainKernels, ForwardBitIdenticalToReference)
{
    KernelOptsGuard guard;
    std::mt19937 rng(71);
    for (const Case& c : kernel_cases()) {
        Tensor x({c.ci, c.h, c.w});
        x.randn(rng);
        Tensor w({c.co, c.ci, c.k, c.k});
        w.randn(rng);
        std::vector<float> bias;
        if (c.bias) {
            bias.resize(static_cast<size_t>(c.co));
            std::normal_distribution<float> d(0, 1);
            for (auto& b : bias) b = d(rng);
        }
        train_kernel_options().strict_reference = true;
        Tensor want({c.co, c.h, c.w});
        conv2d_forward(x, w, bias, want);

        train_kernel_options().strict_reference = false;
        for (int threads : {1, 2, 7}) {
            train_kernel_options().threads = threads;
            Tensor got({c.co, c.h, c.w});
            conv2d_forward(x, w, bias, got);
            for (int64_t i = 0; i < want.numel(); ++i) {
                ASSERT_EQ(got[i], want[i])
                    << "k=" << c.k << " h=" << c.h << " w=" << c.w
                    << " threads=" << threads << " flat " << i;
            }
        }
    }
}

TEST(TrainKernels, BackwardInputBitIdenticalToReference)
{
    KernelOptsGuard guard;
    std::mt19937 rng(72);
    for (const Case& c : kernel_cases()) {
        Tensor w({c.co, c.ci, c.k, c.k});
        w.randn(rng);
        Tensor go({c.co, c.h, c.w});
        go.randn(rng);

        train_kernel_options().strict_reference = true;
        Tensor want({c.ci, c.h, c.w});
        conv2d_backward_input(w, go, want);

        train_kernel_options().strict_reference = false;
        for (int threads : {1, 2, 7}) {
            train_kernel_options().threads = threads;
            Tensor got({c.ci, c.h, c.w});
            conv2d_backward_input(w, go, got);
            for (int64_t i = 0; i < want.numel(); ++i) {
                ASSERT_EQ(got[i], want[i])
                    << "k=" << c.k << " h=" << c.h << " w=" << c.w
                    << " threads=" << threads << " flat " << i;
            }
        }
    }
}

TEST(TrainKernels, BackwardWeightsMatchesReference)
{
    // The one deliberate numerics change: float 8-lane row reductions
    // (double across rows) instead of the reference's all-double
    // accumulator. Unit-scale inputs must agree to fp32 rounding.
    KernelOptsGuard guard;
    std::mt19937 rng(73);
    for (const Case& c : kernel_cases()) {
        Tensor x({c.ci, c.h, c.w});
        x.randn(rng);
        Tensor go({c.co, c.h, c.w});
        go.randn(rng);

        train_kernel_options().strict_reference = true;
        Tensor gw_ref({c.co, c.ci, c.k, c.k});
        std::vector<float> gb_ref(c.bias ? static_cast<size_t>(c.co) : 0,
                                  0.0f);
        conv2d_backward_weights(x, go, gw_ref, gb_ref);

        train_kernel_options().strict_reference = false;
        for (int threads : {1, 2, 7}) {
            train_kernel_options().threads = threads;
            Tensor gw({c.co, c.ci, c.k, c.k});
            std::vector<float> gb(c.bias ? static_cast<size_t>(c.co) : 0,
                                  0.0f);
            conv2d_backward_weights(x, go, gw, gb);
            for (int64_t i = 0; i < gw.numel(); ++i) {
                const float tol =
                    1e-4f * std::max(1.0f, std::fabs(gw_ref[i]));
                ASSERT_NEAR(gw[i], gw_ref[i], tol)
                    << "k=" << c.k << " threads=" << threads << " flat "
                    << i;
            }
            for (size_t i = 0; i < gb.size(); ++i) {
                const float tol =
                    1e-4f * std::max(1.0f, std::fabs(gb_ref[i]));
                ASSERT_NEAR(gb[i], gb_ref[i], tol) << "bias " << i;
            }
        }
    }
}

TEST(TrainKernels, BackwardWeightsThreadCountInvariantBits)
{
    // Each task owns whole output channels with a fixed reduction
    // order, so every thread count must produce the same bits.
    KernelOptsGuard guard;
    train_kernel_options().strict_reference = false;
    std::mt19937 rng(74);
    Tensor x({6, 17, 13});
    x.randn(rng);
    Tensor go({5, 17, 13});
    go.randn(rng);

    train_kernel_options().threads = 1;
    Tensor gw1({5, 6, 3, 3});
    std::vector<float> gb1(5, 0.0f);
    conv2d_backward_weights(x, go, gw1, gb1);
    for (int threads : {2, 7}) {
        train_kernel_options().threads = threads;
        Tensor gw({5, 6, 3, 3});
        std::vector<float> gb(5, 0.0f);
        conv2d_backward_weights(x, go, gw, gb);
        for (int64_t i = 0; i < gw.numel(); ++i) {
            ASSERT_EQ(gw[i], gw1[i]) << "threads=" << threads;
        }
        for (size_t i = 0; i < gb.size(); ++i) {
            ASSERT_EQ(gb[i], gb1[i]) << "threads=" << threads;
        }
    }
}

TEST(TrainKernels, BackwardWeightsHonorsPairMask)
{
    // Masked channel pairs are skipped entirely (blocks untouched);
    // unmasked pairs get exactly the dense result. RingConv2d relies on
    // this to skip the structurally-zero blocks of the RI expansions.
    KernelOptsGuard guard;
    train_kernel_options().strict_reference = false;
    train_kernel_options().threads = 2;
    std::mt19937 rng(76);
    Tensor x({4, 7, 9});
    x.randn(rng);
    Tensor go({3, 7, 9});
    go.randn(rng);

    Tensor dense({3, 4, 3, 3});
    std::vector<float> gb_dense(3, 0.0f);
    conv2d_backward_weights(x, go, dense, gb_dense);

    std::vector<uint8_t> mask(12, 0);
    for (size_t i = 0; i < mask.size(); i += 2) mask[i] = 1;  // odd out
    Tensor masked({3, 4, 3, 3});
    std::vector<float> gb_masked(3, 0.0f);
    conv2d_backward_weights(x, go, masked, gb_masked, mask.data());

    for (int oc = 0; oc < 3; ++oc) {
        // Bias gradients are per-channel row sums, unaffected by the
        // pair mask.
        EXPECT_EQ(gb_masked[static_cast<size_t>(oc)],
                  gb_dense[static_cast<size_t>(oc)]);
        for (int ic = 0; ic < 4; ++ic) {
            const bool keep = mask[static_cast<size_t>(oc) * 4 + ic] != 0;
            for (int ky = 0; ky < 3; ++ky) {
                for (int kx = 0; kx < 3; ++kx) {
                    const float want =
                        keep ? dense.at(oc, ic, ky, kx) : 0.0f;
                    ASSERT_EQ(masked.at(oc, ic, ky, kx), want)
                        << oc << "," << ic;
                }
            }
        }
    }
}

TEST(TrainKernels, BackwardWeightsAccumulates)
{
    KernelOptsGuard guard;
    train_kernel_options().strict_reference = false;
    train_kernel_options().threads = 2;
    std::mt19937 rng(75);
    Tensor x({1, 4, 4});
    x.randn(rng);
    Tensor r({1, 4, 4});
    r.randn(rng);
    Tensor gw({1, 1, 3, 3});
    std::vector<float> gb(1, 0.0f);
    conv2d_backward_weights(x, r, gw, gb);
    const float first = gw.at(0, 0, 1, 1);
    const float first_b = gb[0];
    conv2d_backward_weights(x, r, gw, gb);
    EXPECT_NEAR(gw.at(0, 0, 1, 1), 2.0f * first, 1e-4f);
    EXPECT_NEAR(gb[0], 2.0f * first_b, 1e-4f);
}

nn::TrainConfig
tiny_train_cfg()
{
    nn::TrainConfig cfg;
    cfg.steps = 8;
    cfg.batch_size = 5;
    cfg.patch = 16;
    cfg.eval_count = 2;
    cfg.eval_patch = 16;
    return cfg;
}

TEST(TrainKernels, TrainOnTaskDeterministicPerWorkerCount)
{
    // Same seed + same worker count => identical loss curve, for every
    // worker count (including counts that do not divide the batch).
    KernelOptsGuard guard;
    train_kernel_options().strict_reference = false;
    const data::DenoiseTask task;
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    for (int threads : {1, 2, 7}) {
        nn::TrainConfig cfg = tiny_train_cfg();
        cfg.threads = threads;
        nn::Model m1 =
            models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
        nn::Model m2 =
            models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
        const auto r1 = nn::train_on_task(m1, task, cfg);
        const auto r2 = nn::train_on_task(m2, task, cfg);
        ASSERT_EQ(r1.loss_curve.size(), r2.loss_curve.size());
        for (size_t i = 0; i < r1.loss_curve.size(); ++i) {
            EXPECT_EQ(r1.loss_curve[i], r2.loss_curve[i])
                << "threads=" << threads << " step " << i;
        }
        EXPECT_DOUBLE_EQ(r1.psnr_db, r2.psnr_db) << "threads=" << threads;
    }
}

TEST(TrainKernels, StrictReferenceReproducesSeedTrainerLosses)
{
    // strict_reference must reproduce the seed trainer exactly: scalar
    // kernels, one sample at a time, shared gradient accumulation. The
    // oracle below is an inline replica of that loop.
    KernelOptsGuard guard;
    const data::DenoiseTask task;
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    const nn::TrainConfig cfg = tiny_train_cfg();

    train_kernel_options().strict_reference = true;
    nn::Model trained =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    const auto res = nn::train_on_task(trained, task, cfg);

    // Seed-loop oracle (the pre-data-parallel train_on_task body).
    nn::Model oracle =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    std::mt19937 rng(cfg.seed);
    Adam opt(oracle.params(), cfg.lr);
    std::vector<double> oracle_losses;
    for (int step = 0; step < cfg.steps; ++step) {
        const double progress = static_cast<double>(step) / cfg.steps;
        const double cosine = 0.5 * (1.0 + std::cos(progress * 3.14159265));
        opt.set_lr(static_cast<float>(
            cfg.lr *
            (cfg.lr_final_frac + (1.0 - cfg.lr_final_frac) * cosine)));
        oracle.zero_grad();
        double batch_loss = 0.0;
        for (int b = 0; b < cfg.batch_size; ++b) {
            const auto [input, target] =
                task.make_pair(cfg.patch, cfg.patch, rng);
            const Tensor out = oracle.forward(input, true);
            Tensor grad({out.shape()});
            double loss = 0.0;
            const float inv = 2.0f / static_cast<float>(out.numel());
            for (int64_t i = 0; i < out.numel(); ++i) {
                const float d = out[i] - target[i];
                loss += 0.5 * static_cast<double>(d) * d;
                grad[i] = d * inv;
            }
            batch_loss += 2.0 * loss / static_cast<double>(out.numel());
            oracle.backward(grad);
        }
        oracle_losses.push_back(batch_loss / cfg.batch_size);
        const float gs = 1.0f / static_cast<float>(cfg.batch_size);
        if (cfg.clip_norm > 0.0f) opt.clip_global_norm(cfg.clip_norm, gs);
        opt.step(gs);
    }

    ASSERT_EQ(res.loss_curve.size(), oracle_losses.size());
    for (size_t i = 0; i < oracle_losses.size(); ++i) {
        EXPECT_DOUBLE_EQ(res.loss_curve[i], oracle_losses[i])
            << "step " << i;
    }
}

TEST(TrainKernels, DefaultPathTracksStrictReferenceQuality)
{
    // SIMD conv kernels + data-parallel batch vs strict reference on a
    // two-conv-layer model: the conv forward pass is bit-identical, so
    // (with the directional ReLU pinned to its seed form — the float
    // row form deliberately changes forward bits and is covered by
    // DirectionalFastPathTracksQuality below) step-0 losses agree
    // exactly; after training, quality must agree within the
    // acceptance band (0.05 dB).
    KernelOptsGuard guard;
    const data::DenoiseTask task;
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::TrainConfig cfg = tiny_train_cfg();
    cfg.steps = 40;

    train_kernel_options().strict_reference = true;
    nn::Model m_ref =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    const auto ref = nn::train_on_task(m_ref, task, cfg);

    train_kernel_options().strict_reference = false;
    train_kernel_options().strict_directional = true;
    cfg.threads = 2;
    nn::Model m_simd =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    const auto simd = nn::train_on_task(m_simd, task, cfg);

    ASSERT_EQ(ref.loss_curve.size(), simd.loss_curve.size());
    EXPECT_DOUBLE_EQ(ref.loss_curve[0], simd.loss_curve[0]);
    for (size_t i = 0; i < ref.loss_curve.size(); ++i) {
        EXPECT_NEAR(simd.loss_curve[i], ref.loss_curve[i],
                    1e-3 * std::max(1.0, std::fabs(ref.loss_curve[i])))
            << "step " << i;
    }
    EXPECT_NEAR(simd.psnr_db, ref.psnr_db, 0.05);
}

TEST(TrainKernels, DirectionalForwardTracksSeedAndIsThreadInvariant)
{
    // The float row-kernel DirectionalReLU forward vs the seed
    // per-pixel double path: values agree to fp32 rounding, the
    // rectification mask matches away from exact-zero crossings, and
    // the bits are invariant under thread count.
    KernelOptsGuard guard;
    std::mt19937 rng(81);
    const auto [u, v] = fh_transforms(4);
    for (const auto& [c, h, w] : std::vector<std::array<int, 3>>{
             {8, 9, 7}, {4, 8, 8}, {12, 5, 12}}) {
        Tensor x({c, h, w});
        x.randn(rng);

        train_kernel_options().strict_directional = true;
        nn::DirectionalReLU seed_layer(u, v);
        const Tensor want = seed_layer.forward(x, true);

        train_kernel_options().strict_directional = false;
        Tensor first;
        for (int threads : {1, 2, 7}) {
            train_kernel_options().threads = threads;
            nn::DirectionalReLU fast_layer(u, v);
            const Tensor got = fast_layer.forward(x, true);
            ASSERT_EQ(got.shape(), want.shape());
            for (int64_t i = 0; i < want.numel(); ++i) {
                ASSERT_NEAR(got[i], want[i],
                            1e-5f * std::max(1.0f, std::fabs(want[i])))
                    << "flat " << i << " threads " << threads;
            }
            if (threads == 1) {
                first = got;
            } else {
                for (int64_t i = 0; i < want.numel(); ++i) {
                    ASSERT_EQ(got[i], first[i])
                        << "thread variance at flat " << i;
                }
            }
        }
    }
}

TEST(TrainKernels, DirectionalBackwardMatchesSeed)
{
    // Same gradient to fp32 rounding: run the seed forward/backward,
    // then the fast forward/backward, on identical inputs.
    KernelOptsGuard guard;
    std::mt19937 rng(82);
    const auto [u, v] = fh_transforms(4);
    Tensor x({8, 7, 9});
    x.randn(rng);
    // Keep V y away from 0 so both paths agree on every mask bit and
    // the comparison is purely numerical.
    Tensor go({8, 7, 9});
    go.randn(rng);

    train_kernel_options().strict_directional = true;
    nn::DirectionalReLU seed_layer(u, v);
    seed_layer.forward(x, true);
    const Tensor gref = seed_layer.backward(go);

    train_kernel_options().strict_directional = false;
    for (int threads : {1, 2}) {
        train_kernel_options().threads = threads;
        nn::DirectionalReLU fast_layer(u, v);
        fast_layer.forward(x, true);
        const Tensor got = fast_layer.backward(go);
        for (int64_t i = 0; i < gref.numel(); ++i) {
            ASSERT_NEAR(got[i], gref[i],
                        1e-4f * std::max(1.0f, std::fabs(gref[i])))
                << "flat " << i;
        }
    }
}

TEST(TrainKernels, DirectionalFastPathTracksQuality)
{
    // Training with the float directional kernels must reach the same
    // quality as the seed directional path (the conv kernels are
    // identical bits either way).
    KernelOptsGuard guard;
    const data::DenoiseTask task;
    models::ErnetConfig mc;
    mc.channels = 8;
    mc.blocks = 1;
    nn::TrainConfig cfg = tiny_train_cfg();
    cfg.steps = 40;

    train_kernel_options().strict_directional = true;
    nn::Model m_seed =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    const auto seed = nn::train_on_task(m_seed, task, cfg);

    train_kernel_options().strict_directional = false;
    nn::Model m_fast =
        models::build_dn_ernet_pu(models::Algebra::with_fh("RI4"), mc);
    const auto fast = nn::train_on_task(m_fast, task, cfg);

    // Step-0 losses agree to float rounding (forward bits differ only
    // in the directional layers); end quality within the band.
    ASSERT_EQ(seed.loss_curve.size(), fast.loss_curve.size());
    EXPECT_NEAR(fast.loss_curve[0], seed.loss_curve[0],
                1e-4 * std::max(1.0, std::fabs(seed.loss_curve[0])));
    EXPECT_NEAR(fast.psnr_db, seed.psnr_db, 0.05);
}

}  // namespace
}  // namespace ringcnn::nn
